"""Session events: zone transitions, geofence alerts, and the event log.

Everything the tracking layer *tells the world* flows through one
vocabulary — :class:`SessionEvent` records with a small closed set of
kinds — and one sink, the :class:`EventLog`.  The log is the subsystem's
determinism witness: events are appended in emission order, serialized
with sorted keys and exact float reprs, and digested with SHA-256, so
"the seeded scenario replays byte-identically" is a one-line assertion
on :meth:`EventLog.digest` (and is asserted, across repeat runs and
across thread/process serving workers, by tests and
``benchmarks/bench_tracking.py``).

Geofence policy lives here too: a :class:`GeofenceRule` names a zone and
the condition that should raise an alert — entry into a forbidden zone,
occupancy above a cap, or a dwell overstay.  Rules are evaluated by the
:class:`~repro.sessions.manager.SessionManager` against confirmed FSM
transitions (never raw fixes), so debounce protects alerts from fix
jitter exactly as it protects the zone statistics.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

__all__ = [
    "CHAIN_SEED",
    "EVENT_KINDS",
    "EventLog",
    "GeofenceRule",
    "SessionEvent",
]

#: Digest-chain genesis value (the chain head of an empty log).
CHAIN_SEED = hashlib.sha256(b"repro.sessions.events/chain-v1").hexdigest()

#: Closed set of event kinds the session layer emits.
#:
#: * ``"enter"`` / ``"exit"`` — a confirmed (debounced) zone transition;
#:   exits carry ``dwell_s``.
#: * ``"alert"`` — a geofence rule fired; carries ``rule`` and
#:   ``detail``.
#: * ``"evicted"`` — a session timed out idle and was removed; preceded
#:   by synthetic exits for any zone it was still inside.
EVENT_KINDS = ("enter", "exit", "alert", "evicted")


@dataclass(frozen=True)
class SessionEvent:
    """One emitted tracking event.

    Attributes
    ----------
    seq:
        Position in the emitting log (0-based, gap-free) — the total
        order every consumer sees.
    kind:
        One of :data:`EVENT_KINDS`.
    object_id:
        The tracked object.
    zone:
        Zone the event concerns (empty for ``"evicted"``).
    t_s:
        Logical event time — the timestamp of the fix that *confirmed*
        the transition (not the first pending sample), or the eviction
        sweep time.  Callers supply timestamps, so replays with the same
        inputs produce the same times.
    dwell_s:
        Confirmed time inside the zone, on ``"exit"`` events (0.0
        otherwise).
    rule / detail:
        Alert metadata, on ``"alert"`` events (empty otherwise).
    """

    seq: int
    kind: str
    object_id: str
    zone: str
    t_s: float
    dwell_s: float = 0.0
    rule: str = ""
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    def to_dict(self) -> dict:
        """Wire/ledger form (stable keys; floats round-trip exactly)."""
        record = {
            "seq": self.seq,
            "kind": self.kind,
            "object_id": self.object_id,
            "zone": self.zone,
            "t_s": self.t_s,
        }
        if self.kind == "exit":
            record["dwell_s"] = self.dwell_s
        if self.kind == "alert":
            record["rule"] = self.rule
            record["detail"] = self.detail
        return record

    @classmethod
    def from_dict(cls, record: Mapping) -> "SessionEvent":
        """Rebuild one event from its :meth:`to_dict` form.

        The inverse the replay paths need: floats round-trip through
        JSON bit-exactly, so ``from_dict(to_dict(e)) == e``.
        """
        return cls(
            seq=int(record["seq"]),
            kind=str(record["kind"]),
            object_id=str(record["object_id"]),
            zone=str(record["zone"]),
            t_s=float(record["t_s"]),
            dwell_s=float(record.get("dwell_s", 0.0)),
            rule=str(record.get("rule", "")),
            detail=str(record.get("detail", "")),
        )


@dataclass(frozen=True)
class GeofenceRule:
    """One alerting rule over a zone.

    Exactly one of the three conditions is active per rule:

    * ``forbidden=True`` — alert on every confirmed entry;
    * ``max_occupancy=N`` — alert when confirmed occupancy first
      exceeds ``N`` (re-armed once occupancy drops back to the cap);
    * ``max_dwell_s=T`` — alert once per visit when an object's
      confirmed dwell exceeds ``T`` seconds.

    Attributes
    ----------
    zone:
        Zone name the rule watches.
    name:
        Rule identifier carried on alerts (defaults to a derived one).
    """

    zone: str
    forbidden: bool = False
    max_occupancy: int | None = None
    max_dwell_s: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        active = (
            int(self.forbidden)
            + int(self.max_occupancy is not None)
            + int(self.max_dwell_s is not None)
        )
        if active != 1:
            raise ValueError(
                "a geofence rule needs exactly one of forbidden, "
                "max_occupancy, max_dwell_s"
            )
        if self.max_occupancy is not None and self.max_occupancy < 1:
            raise ValueError("max_occupancy must be at least 1")
        if self.max_dwell_s is not None and self.max_dwell_s <= 0:
            raise ValueError("max_dwell_s must be positive")
        if not self.name:
            object.__setattr__(self, "name", self._derived_name())

    def _derived_name(self) -> str:
        if self.forbidden:
            return f"forbidden:{self.zone}"
        if self.max_occupancy is not None:
            return f"occupancy:{self.zone}>{self.max_occupancy}"
        return f"dwell:{self.zone}>{self.max_dwell_s:g}s"


class EventLog:
    """Append-only, digestible record of every emitted event.

    The log assigns sequence numbers (events arrive without one) and
    keeps the emission order; :meth:`digest` hashes the canonical JSONL
    serialization, which is the byte-identity witness the determinism
    tests and benchmarks compare.  Alongside the whole-log digest the
    log maintains a **digest chain** — ``chain_i = SHA-256(chain_{i-1}
    || line_i)`` per appended event, seeded at :data:`CHAIN_SEED` — so
    two logs can be compared *prefix-wise*: a recovered log "chains
    onto" a pre-crash log exactly when :meth:`chain_at` agrees at the
    shared length (the recovery contract of
    :mod:`repro.sessions.durable`).

    Durability (optional): give the log a ``path`` and every appended
    event is written to that JSONL file as it is emitted — with
    ``fsync=True`` each line is flushed *and* fsynced before
    :meth:`append` returns, so the file itself can serve as a replay
    source after a SIGKILL.  ``rotate_bytes`` bounds the live file:
    when it would grow past the bound it is renamed to ``<path>.<k>``
    (k increasing) and a fresh file is started;
    :meth:`load_jsonl` reads the rotated segments in order and detects
    (and discards) a torn final line left by a mid-write crash.

    Parameters
    ----------
    path:
        JSONL sink path (``None`` keeps the log memory-only, the
        default — behavior-identical to the pre-durability log).
    fsync:
        Fsync the sink after every appended line.  Durable but slow;
        the session store's group-commit journal is the fast path, this
        flag makes the *log file itself* a standalone replay source.
    rotate_bytes:
        Rotate the live file before it exceeds this size (``None``
        never rotates).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        fsync: bool = False,
        rotate_bytes: int | None = None,
    ) -> None:
        if rotate_bytes is not None and rotate_bytes < 1:
            raise ValueError("rotate_bytes must be positive")
        self._events: list[SessionEvent] = []
        self._chains: list[str] = []
        self.path = None if path is None else Path(path)
        self.fsync = fsync
        self.rotate_bytes = rotate_bytes
        self.rotations = 0
        self._sink = None
        self._sink_bytes = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(self.path, "a", encoding="utf-8")
            self._sink_bytes = self._sink.tell()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SessionEvent]:
        return iter(self._events)

    def append(self, event: SessionEvent) -> SessionEvent:
        """Re-stamp ``event`` with the next sequence number and keep it."""
        stamped = SessionEvent(
            seq=len(self._events),
            kind=event.kind,
            object_id=event.object_id,
            zone=event.zone,
            t_s=event.t_s,
            dwell_s=event.dwell_s,
            rule=event.rule,
            detail=event.detail,
        )
        line = json.dumps(
            stamped.to_dict(), sort_keys=True, separators=(",", ":")
        )
        previous = self._chains[-1] if self._chains else CHAIN_SEED
        self._events.append(stamped)
        self._chains.append(
            hashlib.sha256((previous + line).encode()).hexdigest()
        )
        if self._sink is not None:
            self._write_line(line)
        return stamped

    # ------------------------------------------------------------------
    # Durable sink
    # ------------------------------------------------------------------
    def _write_line(self, line: str) -> None:
        encoded = line + "\n"
        if (
            self.rotate_bytes is not None
            and self._sink_bytes > 0
            and self._sink_bytes + len(encoded.encode()) > self.rotate_bytes
        ):
            self._rotate()
        self._sink.write(encoded)
        self._sink.flush()
        if self.fsync:
            os.fsync(self._sink.fileno())
        self._sink_bytes += len(encoded.encode())

    def _rotate(self) -> None:
        """Rename the live file aside and start a fresh one."""
        self._sink.flush()
        if self.fsync:
            os.fsync(self._sink.fileno())
        self._sink.close()
        self.rotations += 1
        self.path.rename(self.path.with_name(f"{self.path.name}.{self.rotations}"))
        self._sink = open(self.path, "a", encoding="utf-8")
        self._sink_bytes = 0

    def close(self) -> None:
        """Flush and close the sink (no-op for memory-only logs)."""
        if self._sink is not None:
            self._sink.flush()
            if self.fsync:
                os.fsync(self._sink.fileno())
            self._sink.close()
            self._sink = None

    @staticmethod
    def segment_paths(path: str | Path) -> list[Path]:
        """Every on-disk segment of one log, rotation order then live."""
        path = Path(path)
        rotated = []
        for candidate in path.parent.glob(f"{path.name}.*"):
            suffix = candidate.name[len(path.name) + 1 :]
            if suffix.isdigit():
                rotated.append((int(suffix), candidate))
        ordered = [p for _, p in sorted(rotated)]
        if path.exists():
            ordered.append(path)
        return ordered

    @classmethod
    def load_jsonl(cls, path: str | Path) -> tuple["EventLog", int]:
        """Rebuild a log from its JSONL file(s); returns (log, dropped).

        Reads rotated segments in order, then the live file.  A final
        line that does not parse (or is not newline-terminated) is a
        torn write from a crash mid-append: it is discarded and counted
        in ``dropped``.  A malformed line anywhere *else* means real
        corruption and raises ``ValueError``.  Sequence numbers must be
        gap-free from 0 — the loaded log re-derives its digest chain,
        so prefix comparison against a live log works immediately.
        """
        segments = cls.segment_paths(path)
        if not segments:
            raise FileNotFoundError(f"no event log at {path}")
        log = cls()
        dropped = 0
        for si, segment in enumerate(segments):
            raw = segment.read_text(encoding="utf-8")
            lines = raw.split("\n")
            # A well-formed file ends with a newline -> last split is "".
            torn_tail = lines and lines[-1] != ""
            if not torn_tail:
                lines = lines[:-1]
            final_segment = si == len(segments) - 1
            for li, line in enumerate(lines):
                last_line = li == len(lines) - 1
                try:
                    record = json.loads(line)
                    event = SessionEvent.from_dict(record)
                except (ValueError, KeyError) as exc:
                    if final_segment and last_line:
                        dropped += 1  # torn final write: discard
                        break
                    raise ValueError(
                        f"corrupt event log line {li} in {segment}: {exc}"
                    )
                if final_segment and last_line and torn_tail:
                    # Parsed, but the newline never made it to disk: the
                    # write may still be partial (e.g. a truncated float
                    # that happens to parse). Only a terminated line is
                    # a committed line.
                    dropped += 1
                    break
                if event.seq != len(log._events):
                    raise ValueError(
                        f"event log {segment} has sequence gap: expected "
                        f"{len(log._events)}, found {event.seq}"
                    )
                log.append(event)
        return log, dropped

    def events(self) -> tuple[SessionEvent, ...]:
        """All events, in emission order."""
        return tuple(self._events)

    def counts(self) -> dict[str, int]:
        """``{kind: count}`` over the whole log (all kinds present)."""
        out = {kind: 0 for kind in EVENT_KINDS}
        for event in self._events:
            out[event.kind] += 1
        return out

    def to_jsonl(self) -> str:
        """Canonical serialization: one sorted-keys JSON object per line.

        Floats serialize as Python's shortest round-tripping repr, so
        two logs are byte-identical exactly when every event field is
        bit-identical.
        """
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
            for e in self._events
        )

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_jsonl` — the replay witness."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()

    def chain(self) -> str:
        """Current digest-chain head (:data:`CHAIN_SEED` when empty).

        Incrementally maintained on append — O(1) to read, unlike
        :meth:`digest` which re-serializes the whole log.
        """
        return self._chains[-1] if self._chains else CHAIN_SEED

    def chain_at(self, length: int) -> str:
        """Chain head after the first ``length`` events.

        The prefix-verification primitive: a recovered log *chains onto*
        a pre-crash log of length ``n`` iff
        ``recovered.chain_at(n) == pre_crash.chain_at(n)`` — and because
        each link hashes the previous head, agreement at ``n`` certifies
        byte-identity of all ``n`` event lines, not just the last.
        """
        if not 0 <= length <= len(self._chains):
            raise ValueError(
                f"chain length {length} outside [0, {len(self._chains)}]"
            )
        return self._chains[length - 1] if length else CHAIN_SEED
