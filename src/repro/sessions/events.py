"""Session events: zone transitions, geofence alerts, and the event log.

Everything the tracking layer *tells the world* flows through one
vocabulary — :class:`SessionEvent` records with a small closed set of
kinds — and one sink, the :class:`EventLog`.  The log is the subsystem's
determinism witness: events are appended in emission order, serialized
with sorted keys and exact float reprs, and digested with SHA-256, so
"the seeded scenario replays byte-identically" is a one-line assertion
on :meth:`EventLog.digest` (and is asserted, across repeat runs and
across thread/process serving workers, by tests and
``benchmarks/bench_tracking.py``).

Geofence policy lives here too: a :class:`GeofenceRule` names a zone and
the condition that should raise an alert — entry into a forbidden zone,
occupancy above a cap, or a dwell overstay.  Rules are evaluated by the
:class:`~repro.sessions.manager.SessionManager` against confirmed FSM
transitions (never raw fixes), so debounce protects alerts from fix
jitter exactly as it protects the zone statistics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "GeofenceRule",
    "SessionEvent",
]

#: Closed set of event kinds the session layer emits.
#:
#: * ``"enter"`` / ``"exit"`` — a confirmed (debounced) zone transition;
#:   exits carry ``dwell_s``.
#: * ``"alert"`` — a geofence rule fired; carries ``rule`` and
#:   ``detail``.
#: * ``"evicted"`` — a session timed out idle and was removed; preceded
#:   by synthetic exits for any zone it was still inside.
EVENT_KINDS = ("enter", "exit", "alert", "evicted")


@dataclass(frozen=True)
class SessionEvent:
    """One emitted tracking event.

    Attributes
    ----------
    seq:
        Position in the emitting log (0-based, gap-free) — the total
        order every consumer sees.
    kind:
        One of :data:`EVENT_KINDS`.
    object_id:
        The tracked object.
    zone:
        Zone the event concerns (empty for ``"evicted"``).
    t_s:
        Logical event time — the timestamp of the fix that *confirmed*
        the transition (not the first pending sample), or the eviction
        sweep time.  Callers supply timestamps, so replays with the same
        inputs produce the same times.
    dwell_s:
        Confirmed time inside the zone, on ``"exit"`` events (0.0
        otherwise).
    rule / detail:
        Alert metadata, on ``"alert"`` events (empty otherwise).
    """

    seq: int
    kind: str
    object_id: str
    zone: str
    t_s: float
    dwell_s: float = 0.0
    rule: str = ""
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    def to_dict(self) -> dict:
        """Wire/ledger form (stable keys; floats round-trip exactly)."""
        record = {
            "seq": self.seq,
            "kind": self.kind,
            "object_id": self.object_id,
            "zone": self.zone,
            "t_s": self.t_s,
        }
        if self.kind == "exit":
            record["dwell_s"] = self.dwell_s
        if self.kind == "alert":
            record["rule"] = self.rule
            record["detail"] = self.detail
        return record


@dataclass(frozen=True)
class GeofenceRule:
    """One alerting rule over a zone.

    Exactly one of the three conditions is active per rule:

    * ``forbidden=True`` — alert on every confirmed entry;
    * ``max_occupancy=N`` — alert when confirmed occupancy first
      exceeds ``N`` (re-armed once occupancy drops back to the cap);
    * ``max_dwell_s=T`` — alert once per visit when an object's
      confirmed dwell exceeds ``T`` seconds.

    Attributes
    ----------
    zone:
        Zone name the rule watches.
    name:
        Rule identifier carried on alerts (defaults to a derived one).
    """

    zone: str
    forbidden: bool = False
    max_occupancy: int | None = None
    max_dwell_s: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        active = (
            int(self.forbidden)
            + int(self.max_occupancy is not None)
            + int(self.max_dwell_s is not None)
        )
        if active != 1:
            raise ValueError(
                "a geofence rule needs exactly one of forbidden, "
                "max_occupancy, max_dwell_s"
            )
        if self.max_occupancy is not None and self.max_occupancy < 1:
            raise ValueError("max_occupancy must be at least 1")
        if self.max_dwell_s is not None and self.max_dwell_s <= 0:
            raise ValueError("max_dwell_s must be positive")
        if not self.name:
            object.__setattr__(self, "name", self._derived_name())

    def _derived_name(self) -> str:
        if self.forbidden:
            return f"forbidden:{self.zone}"
        if self.max_occupancy is not None:
            return f"occupancy:{self.zone}>{self.max_occupancy}"
        return f"dwell:{self.zone}>{self.max_dwell_s:g}s"


class EventLog:
    """Append-only, digestible record of every emitted event.

    The log assigns sequence numbers (events arrive without one) and
    keeps the emission order; :meth:`digest` hashes the canonical JSONL
    serialization, which is the byte-identity witness the determinism
    tests and benchmarks compare.
    """

    def __init__(self) -> None:
        self._events: list[SessionEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SessionEvent]:
        return iter(self._events)

    def append(self, event: SessionEvent) -> SessionEvent:
        """Re-stamp ``event`` with the next sequence number and keep it."""
        stamped = SessionEvent(
            seq=len(self._events),
            kind=event.kind,
            object_id=event.object_id,
            zone=event.zone,
            t_s=event.t_s,
            dwell_s=event.dwell_s,
            rule=event.rule,
            detail=event.detail,
        )
        self._events.append(stamped)
        return stamped

    def events(self) -> tuple[SessionEvent, ...]:
        """All events, in emission order."""
        return tuple(self._events)

    def counts(self) -> dict[str, int]:
        """``{kind: count}`` over the whole log (all kinds present)."""
        out = {kind: 0 for kind in EVENT_KINDS}
        for event in self._events:
            out[event.kind] += 1
        return out

    def to_jsonl(self) -> str:
        """Canonical serialization: one sorted-keys JSON object per line.

        Floats serialize as Python's shortest round-tripping repr, so
        two logs are byte-identical exactly when every event field is
        bit-identical.
        """
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
            for e in self._events
        )

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_jsonl` — the replay witness."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()
