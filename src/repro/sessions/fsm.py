"""Zone entry/exit finite-state machines with hysteresis.

Raw position fixes jitter; a meter-scale fix near a zone edge would
flap enter/exit every tick if transitions were taken at face value.
Each (object, zone) pair therefore runs a four-state machine::

    OUTSIDE ──in──▶ ENTER_PENDING ──in x N──▶ INSIDE
       ▲               │ out                    │ out
       │               ▼                        ▼
       └──out x M── EXIT_PENDING ◀──────────────┘
                       │ in
                       └────────▶ INSIDE   (re-confirmed, no event)

A transition only becomes an *event* after ``enter_debounce``
consecutive in-zone fixes (resp. ``exit_debounce`` out-of-zone fixes);
a single contradicting fix resets the pending counter back to the
confirmed state.  Event timestamps are the **confirming** fix's time,
and dwell is measured between confirmed entry and confirmed exit — the
statistics debounce reports are the ones a human watching the track
would count.

Zone membership is exclusive (the :class:`~repro.sessions.zones.ZoneMap`
primary assignment), so at most two machines per object are ever away
from OUTSIDE: the zone being left and the zone being approached.  The
:class:`ObjectZoneTracker` exploits that — it stores only non-OUTSIDE
machines — which is what keeps per-fix cost flat as the zone count
grows (fleet-scale benchmarks run thousands of objects over dozens of
zones).

Within one tick, exits are emitted before enters: a same-tick handoff
between adjacent zones reads exit(A) then enter(B), never a transient
double-occupancy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ZoneState", "FSMConfig", "ObjectZoneTracker"]


class ZoneState(enum.Enum):
    """Per-(object, zone) machine state."""

    OUTSIDE = "outside"
    ENTER_PENDING = "enter-pending"
    INSIDE = "inside"
    EXIT_PENDING = "exit-pending"


@dataclass(frozen=True)
class FSMConfig:
    """Debounce thresholds shared by every machine of a session layer.

    Attributes
    ----------
    enter_debounce:
        Consecutive in-zone fixes required to confirm an entry.  ``1``
        confirms immediately (no hysteresis).
    exit_debounce:
        Consecutive out-of-zone fixes required to confirm an exit.
    """

    enter_debounce: int = 2
    exit_debounce: int = 2

    def __post_init__(self) -> None:
        if self.enter_debounce < 1 or self.exit_debounce < 1:
            raise ValueError("debounce thresholds must be at least 1")


class _Cell:
    """Mutable state of one non-OUTSIDE (object, zone) machine."""

    __slots__ = ("state", "count", "entered_at")

    def __init__(self, state: ZoneState, count: int) -> None:
        self.state = state
        self.count = count
        self.entered_at = 0.0


class ObjectZoneTracker:
    """All zone machines of one tracked object.

    Feed it the object's primary zone per fix (:meth:`observe`); it
    returns the confirmed transitions as ``(kind, zone, t_s, dwell_s)``
    tuples, exits first.  The caller (the session manager) turns those
    into :class:`~repro.sessions.events.SessionEvent` records.
    """

    def __init__(self, config: FSMConfig | None = None) -> None:
        self.config = config or FSMConfig()
        #: zone name -> machine, for machines away from OUTSIDE only.
        self._cells: dict[str, _Cell] = {}

    # ------------------------------------------------------------------
    def state(self, zone: str) -> ZoneState:
        """Current machine state for ``zone``."""
        cell = self._cells.get(zone)
        return cell.state if cell is not None else ZoneState.OUTSIDE

    def inside_zones(self) -> tuple[str, ...]:
        """Zones this object confirmedly occupies (INSIDE/EXIT_PENDING),
        in insertion order (at most one under exclusive membership)."""
        return tuple(
            zone
            for zone, cell in self._cells.items()
            if cell.state in (ZoneState.INSIDE, ZoneState.EXIT_PENDING)
        )

    def entered_at(self, zone: str) -> float | None:
        """Confirmed entry time into ``zone`` (None when not inside)."""
        cell = self._cells.get(zone)
        if cell is None or cell.state not in (
            ZoneState.INSIDE,
            ZoneState.EXIT_PENDING,
        ):
            return None
        return cell.entered_at

    # ------------------------------------------------------------------
    def observe(
        self, t_s: float, primary: str | None
    ) -> list[tuple[str, str, float, float]]:
        """Advance every live machine with one fix's zone assignment.

        Returns confirmed transitions as ``(kind, zone, t_s, dwell_s)``
        with exits ordered before enters.
        """
        exits: list[tuple[str, str, float, float]] = []
        enters: list[tuple[str, str, float, float]] = []
        cfg = self.config

        # Existing machines first (dict order = first-touched order,
        # deterministic under deterministic input order).
        for zone in list(self._cells):
            cell = self._cells[zone]
            member = zone == primary
            if cell.state is ZoneState.ENTER_PENDING:
                if member:
                    cell.count += 1
                    if cell.count >= cfg.enter_debounce:
                        cell.state = ZoneState.INSIDE
                        cell.entered_at = t_s
                        enters.append(("enter", zone, t_s, 0.0))
                else:
                    # A contradicting fix kills the pending entry.
                    del self._cells[zone]
            elif cell.state is ZoneState.INSIDE:
                if not member:
                    if cfg.exit_debounce <= 1:
                        dwell = t_s - cell.entered_at
                        del self._cells[zone]
                        exits.append(("exit", zone, t_s, dwell))
                    else:
                        cell.state = ZoneState.EXIT_PENDING
                        cell.count = 1
            elif cell.state is ZoneState.EXIT_PENDING:
                if member:
                    # Re-confirmed inside; the excursion never happened.
                    cell.state = ZoneState.INSIDE
                    cell.count = 0
                else:
                    cell.count += 1
                    if cell.count >= cfg.exit_debounce:
                        dwell = t_s - cell.entered_at
                        del self._cells[zone]
                        exits.append(("exit", zone, t_s, dwell))

        # A first fix inside a zone with no machine yet starts one.
        if primary is not None and primary not in self._cells:
            if cfg.enter_debounce <= 1:
                cell = _Cell(ZoneState.INSIDE, 0)
                cell.entered_at = t_s
                self._cells[primary] = cell
                enters.append(("enter", primary, t_s, 0.0))
            else:
                self._cells[primary] = _Cell(ZoneState.ENTER_PENDING, 1)

        return exits + enters

    # ------------------------------------------------------------------
    # State capture (crash-consistent snapshots)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe machine states, in first-touched order.

        Order matters: :meth:`observe` iterates machines in insertion
        order, so a restored tracker must replay with the same order to
        keep the event stream byte-identical.
        """
        return {
            zone: {
                "state": cell.state.value,
                "count": cell.count,
                "entered_at": cell.entered_at,
            }
            for zone, cell in self._cells.items()
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        cells: dict[str, _Cell] = {}
        for zone, recorded in state.items():
            cell = _Cell(ZoneState(recorded["state"]), int(recorded["count"]))
            cell.entered_at = float(recorded["entered_at"])
            cells[zone] = cell
        self._cells = cells

    # ------------------------------------------------------------------
    def flush(self, t_s: float) -> list[tuple[str, str, float, float]]:
        """Force-exit every confirmed zone (session eviction path).

        Pending entries are discarded (they were never confirmed);
        confirmed occupancy gets a synthetic exit with dwell measured to
        ``t_s``.
        """
        exits: list[tuple[str, str, float, float]] = []
        for zone in list(self._cells):
            cell = self._cells[zone]
            if cell.state in (ZoneState.INSIDE, ZoneState.EXIT_PENDING):
                exits.append(("exit", zone, t_s, t_s - cell.entered_at))
            del self._cells[zone]
        return exits
