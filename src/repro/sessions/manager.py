"""`SessionManager`: the fleet of tracking sessions behind serving.

The streaming counterpart of the one-shot ``locate`` path: estimates
flow in per object (from a :class:`~repro.serving.LocalizationService`,
a :class:`~repro.cluster.LocalizationCluster`, or the gateway's durable
ingest), and the manager owns everything stateful about "tracking" —
per-object filters, zone machines, geofence rules, occupancy analytics,
the event log, and idle eviction.

Determinism contract: the manager does no wall-clock reads and draws no
ambient randomness.  Timestamps are caller-supplied, per-object RNGs
(particle filters) are keyed ``SeedSequence([seed, blake2b(object_id)])``
— arrival-order independent — and events are sequenced in emission
order.  Feed it the same fix stream twice and
:meth:`SessionManager.event_log`'s digest is byte-identical, which is
exactly what the determinism tests and ``bench_tracking`` assert across
repeat runs and across thread/process serving workers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..environment import FloorPlan
from ..geometry import Point
from ..serving.metrics import json_safe
from ..tracking import (
    KalmanConfig,
    KalmanTracker,
    ParticleFilterConfig,
    ParticleFilterTracker,
    TrackFilter,
)
from .analytics import ZoneAnalytics
from .events import EventLog, GeofenceRule, SessionEvent
from .fsm import FSMConfig
from .session import SessionUpdate, TrackingSession
from .zones import ZoneMap

__all__ = ["SessionConfig", "SessionManager"]


@dataclass(frozen=True)
class SessionConfig:
    """Operational knobs of a :class:`SessionManager`.

    Attributes
    ----------
    filter_kind:
        ``"kalman"`` (default: cheap, venue-blind) or ``"particle"``
        (venue-aware; needs a ``plan`` at manager construction).
    kalman / particle:
        Filter tuning passed to every new session's tracker.
    base_sigma_m:
        Configured fix noise at full confidence.
    modulate_noise:
        Map guard confidence into per-fix measurement noise
        (:func:`~repro.sessions.session.confidence_to_sigma`).
        ``False`` is the confidence-blind reference arm.
    confidence_floor:
        Lower clamp of the confidence-to-noise mapping.
    enter_debounce / exit_debounce:
        FSM hysteresis thresholds (see :mod:`repro.sessions.fsm`).
    idle_timeout_s:
        Sessions idle longer than this are evicted by
        :meth:`SessionManager.evict_idle`.
    max_sessions:
        Hard cap on concurrently tracked objects; exceeding it raises
        instead of silently degrading every track's latency.
    seed:
        Root of the per-object RNG tree (particle filters only; the
        Kalman path is draw-free).
    """

    filter_kind: str = "kalman"
    kalman: KalmanConfig = field(default_factory=KalmanConfig)
    particle: ParticleFilterConfig = field(
        default_factory=ParticleFilterConfig
    )
    base_sigma_m: float = 1.5
    modulate_noise: bool = True
    confidence_floor: float = 0.05
    enter_debounce: int = 2
    exit_debounce: int = 2
    idle_timeout_s: float = 30.0
    max_sessions: int = 100_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.filter_kind not in ("kalman", "particle"):
            raise ValueError("filter_kind must be 'kalman' or 'particle'")
        if self.base_sigma_m <= 0:
            raise ValueError("base_sigma_m must be positive")
        if not 0 < self.confidence_floor <= 1:
            raise ValueError("confidence_floor must be in (0, 1]")
        if self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        # Debounce thresholds are validated by FSMConfig.
        FSMConfig(self.enter_debounce, self.exit_debounce)


class SessionManager:
    """Owns every live tracking session and their shared zone world.

    Parameters
    ----------
    zones:
        The venue's :class:`~repro.sessions.zones.ZoneMap`.
    config:
        Operational :class:`SessionConfig`.
    rules:
        Geofence rules evaluated against confirmed transitions.
    plan:
        Floor plan, required when ``filter_kind="particle"`` (the
        particle filter's legality weighting needs the venue).
    """

    def __init__(
        self,
        zones: ZoneMap,
        config: SessionConfig | None = None,
        rules: Sequence[GeofenceRule] = (),
        plan: FloorPlan | None = None,
        store: Any | None = None,
        checkpoint_every: int = 512,
    ) -> None:
        self.zones = zones
        self.config = config or SessionConfig()
        self.plan = plan
        if self.config.filter_kind == "particle" and plan is None:
            raise ValueError("particle sessions need a floor plan")
        self.rules = tuple(rules)
        known = set(zones.names())
        for rule in self.rules:
            if rule.zone not in known:
                raise ValueError(
                    f"geofence rule {rule.name!r} watches unknown zone "
                    f"{rule.zone!r}"
                )
        self._fsm_config = FSMConfig(
            self.config.enter_debounce, self.config.exit_debounce
        )
        self._sessions: dict[str, TrackingSession] = {}
        self.analytics = ZoneAnalytics(zones.names())
        self.log = EventLog()
        #: occupancy rules currently above their cap (re-armed on drop).
        self._tripped: set[str] = set()
        #: (rule name, object) pairs already alerted this visit.
        self._dwell_alerted: set[tuple[str, str]] = set()
        self.sessions_started_total = 0
        self.sessions_evicted_total = 0
        self.updates_total = 0
        # Durability (optional): a SessionStore journals every applied
        # input and takes a full snapshot every ``checkpoint_every``
        # journal entries; ``_replaying`` suppresses journaling while
        # recovery drives this very apply path from the journal.
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        self.store = store
        self.checkpoint_every = checkpoint_every
        self._replaying = False

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def session(self, object_id: str) -> TrackingSession | None:
        """The live session for ``object_id`` (None when not tracked)."""
        return self._sessions.get(object_id)

    def object_ids(self) -> tuple[str, ...]:
        """Tracked object ids, in first-seen order."""
        return tuple(self._sessions)

    def _build_filter(self, object_id: str) -> TrackFilter:
        if self.config.filter_kind == "kalman":
            return KalmanTracker(self.config.kalman)
        # Keyed by object identity, not arrival order, so a fleet's
        # particle draws replay identically however objects interleave.
        key = int.from_bytes(
            hashlib.blake2b(object_id.encode(), digest_size=8).digest(),
            "big",
        )
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, key])
        )
        assert self.plan is not None  # enforced at construction
        return ParticleFilterTracker(self.plan, self.config.particle, rng)

    def _session_for(self, object_id: str) -> TrackingSession:
        session = self._sessions.get(object_id)
        if session is None:
            if len(self._sessions) >= self.config.max_sessions:
                raise RuntimeError(
                    f"session cap reached ({self.config.max_sessions}); "
                    "evict idle sessions or raise max_sessions"
                )
            session = TrackingSession(
                object_id,
                self._build_filter(object_id),
                self.zones,
                fsm_config=self._fsm_config,
                base_sigma_m=self.config.base_sigma_m,
                confidence_floor=self.config.confidence_floor,
                modulate_noise=self.config.modulate_noise,
            )
            self._sessions[object_id] = session
            self.sessions_started_total += 1
        return session

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def observe(
        self,
        object_id: str,
        t_s: float,
        position: Point,
        confidence: float = 1.0,
    ) -> tuple[SessionUpdate, list[SessionEvent]]:
        """Feed one fix; returns the track update and emitted events.

        The returned events are the log-stamped records (zone
        transitions plus any geofence alerts they or the accumulated
        dwell triggered), in emission order.
        """
        session = self._session_for(object_id)
        update = session.observe(t_s, position, confidence)
        self.updates_total += 1
        events = self._commit_transitions(object_id, update.transitions)
        events.extend(self._check_dwell_rules(session, t_s))
        self._journal(
            "fix",
            object_id,
            t_s,
            {
                "x": position.x,
                "y": position.y,
                "confidence": confidence,
            },
        )
        return update, events

    def ingest(
        self, object_id: str, t_s: float, response: Any
    ) -> tuple[SessionUpdate, list[SessionEvent]]:
        """Feed one serving/cluster/gateway response as a fix.

        Reads ``response.position`` and ``response.confidence`` (0.0 for
        degraded fallback answers — maximally distrusted, never
        dropped), so the guard layer's verdicts modulate the track
        exactly as ROADMAP item 2 demands.
        """
        return self.observe(
            object_id,
            t_s,
            response.position,
            confidence=float(getattr(response, "confidence", 1.0)),
        )

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict_idle(self, now_s: float) -> list[SessionEvent]:
        """Remove sessions idle past the timeout, flushing their zones.

        Confirmed occupancy gets synthetic exits (dwell measured to the
        session's last fix — the object was not observably present
        after that), then an ``"evicted"`` event closes the session.
        """
        events: list[SessionEvent] = []
        timeout = self.config.idle_timeout_s
        for object_id in [
            oid
            for oid, s in self._sessions.items()
            if s.idle_for(now_s) > timeout
        ]:
            session = self._sessions.pop(object_id)
            last = (
                session.last_seen_s
                if session.last_seen_s is not None
                else now_s
            )
            events.extend(
                self._commit_transitions(object_id, session.close(last))
            )
            events.append(
                self.log.append(
                    SessionEvent(0, "evicted", object_id, "", last)
                )
            )
            self.sessions_evicted_total += 1
        if events:
            # A sweep that evicted nothing changed nothing — journaling
            # it would only grow the journal without moving any state.
            self._journal("evict", "", now_s, {})
        return events

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _journal(self, kind: str, object_id: str, t_s: float, payload: dict) -> None:
        """Journal one applied input and checkpoint on cadence.

        The journaled row carries the event log's *post-apply* chain
        head, so replaying the journal self-verifies: after each
        replayed entry the recovered log must be at exactly this chain
        value, or recovery diverged from the pre-crash run.
        """
        if self.store is None or self._replaying:
            return
        seq = self.store.append_journal(
            kind, object_id, t_s, payload, self.log.chain()
        )
        if seq % self.checkpoint_every == 0:
            self.store.save_snapshot(seq, self.state_dict())

    def sync(self) -> None:
        """Force any group-commit-buffered journal rows to disk."""
        if self.store is not None:
            self.store.flush()

    def state_dict(self) -> dict:
        """JSON-safe snapshot of everything mutable about the fleet.

        Restoring this on a manager built with the same construction
        arguments (zones, config, rules, plan) continues the input
        stream bit-identically — filters carry their RNG state, FSMs
        their pending counters, the log its full event history.
        """
        return {
            "sessions": {
                oid: s.state_dict() for oid, s in self._sessions.items()
            },
            "analytics": self.analytics.state_dict(),
            "events": [e.to_dict() for e in self.log],
            "tripped": sorted(self._tripped),
            "dwell_alerted": sorted(list(k) for k in self._dwell_alerted),
            "counters": {
                "sessions_started_total": self.sessions_started_total,
                "sessions_evicted_total": self.sessions_evicted_total,
                "updates_total": self.updates_total,
            },
        }

    def restore_state(self, state: Mapping) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Sessions are rebuilt through the normal constructor path (so
        particle RNGs get their object-keyed seeding) and then
        overwritten with the captured filter/FSM state; the event log is
        re-appended event by event, which re-derives its digest chain.
        """
        sessions: dict[str, TrackingSession] = {}
        for object_id, recorded in state["sessions"].items():
            session = TrackingSession(
                object_id,
                self._build_filter(object_id),
                self.zones,
                fsm_config=self._fsm_config,
                base_sigma_m=self.config.base_sigma_m,
                confidence_floor=self.config.confidence_floor,
                modulate_noise=self.config.modulate_noise,
            )
            session.restore_state(recorded)
            sessions[object_id] = session
        self._sessions = sessions
        self.analytics.restore_state(state["analytics"])
        log = EventLog()
        for record in state["events"]:
            log.append(SessionEvent.from_dict(record))
        self.log = log
        self._tripped = set(state["tripped"])
        self._dwell_alerted = {
            (rule, oid) for rule, oid in state["dwell_alerted"]
        }
        counters = state["counters"]
        self.sessions_started_total = int(counters["sessions_started_total"])
        self.sessions_evicted_total = int(counters["sessions_evicted_total"])
        self.updates_total = int(counters["updates_total"])

    # ------------------------------------------------------------------
    # Event + rule plumbing
    # ------------------------------------------------------------------
    def _commit_transitions(
        self, object_id: str, transitions: list
    ) -> list[SessionEvent]:
        """Log confirmed transitions, update analytics, run rules."""
        events: list[SessionEvent] = []
        for kind, zone, t_s, dwell_s in transitions:
            events.append(
                self.log.append(
                    SessionEvent(
                        0, kind, object_id, zone, t_s, dwell_s=dwell_s
                    )
                )
            )
            if kind == "enter":
                occupancy = self.analytics.record_enter(zone)
                events.extend(
                    self._check_entry_rules(object_id, zone, t_s, occupancy)
                )
            elif kind == "exit":
                occupancy = self.analytics.record_exit(zone, dwell_s)
                self._rearm_occupancy_rules(zone, occupancy)
                self._dwell_alerted = {
                    (rule, oid)
                    for rule, oid in self._dwell_alerted
                    if oid != object_id or self._rule_zone(rule) != zone
                }
        return events

    def _rule_zone(self, rule_name: str) -> str:
        for rule in self.rules:
            if rule.name == rule_name:
                return rule.zone
        return ""

    def _alert(
        self, object_id: str, rule: GeofenceRule, t_s: float, detail: str
    ) -> SessionEvent:
        return self.log.append(
            SessionEvent(
                0,
                "alert",
                object_id,
                rule.zone,
                t_s,
                rule=rule.name,
                detail=detail,
            )
        )

    def _check_entry_rules(
        self, object_id: str, zone: str, t_s: float, occupancy: int
    ) -> list[SessionEvent]:
        events = []
        for rule in self.rules:
            if rule.zone != zone:
                continue
            if rule.forbidden:
                events.append(
                    self._alert(
                        object_id, rule, t_s, "entered forbidden zone"
                    )
                )
            elif (
                rule.max_occupancy is not None
                and occupancy > rule.max_occupancy
                and rule.name not in self._tripped
            ):
                self._tripped.add(rule.name)
                events.append(
                    self._alert(
                        object_id,
                        rule,
                        t_s,
                        f"occupancy {occupancy} exceeds "
                        f"{rule.max_occupancy}",
                    )
                )
        return events

    def _rearm_occupancy_rules(self, zone: str, occupancy: int) -> None:
        for rule in self.rules:
            if (
                rule.zone == zone
                and rule.max_occupancy is not None
                and occupancy <= rule.max_occupancy
            ):
                self._tripped.discard(rule.name)

    def _check_dwell_rules(
        self, session: TrackingSession, t_s: float
    ) -> list[SessionEvent]:
        events = []
        for rule in self.rules:
            if rule.max_dwell_s is None:
                continue
            entered = session.fsm.entered_at(rule.zone)
            if entered is None:
                continue
            key = (rule.name, session.object_id)
            dwell = t_s - entered
            if dwell > rule.max_dwell_s and key not in self._dwell_alerted:
                self._dwell_alerted.add(key)
                events.append(
                    self._alert(
                        session.object_id,
                        rule,
                        t_s,
                        f"dwell {dwell:.1f}s exceeds {rule.max_dwell_s:g}s",
                    )
                )
        return events

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def event_log(self) -> EventLog:
        """The manager's append-only event log (determinism witness)."""
        return self.log

    def metrics_snapshot(self) -> dict:
        """Plain-dict fleet state, shaped like the serving snapshots."""
        return {
            "sessions_active": len(self._sessions),
            "sessions_started_total": self.sessions_started_total,
            "sessions_evicted_total": self.sessions_evicted_total,
            "updates_total": self.updates_total,
            "events_total": len(self.log),
            "events": self.log.counts(),
            "occupancy_total": self.analytics.total_occupancy(),
            "zones": self.analytics.snapshot(),
            "event_log_digest": self.log.digest(),
            "event_log_chain": self.log.chain(),
        }

    def metrics_json(self) -> dict:
        """:meth:`metrics_snapshot` coerced JSON-safe (exporter form)."""
        snapshot: Mapping = self.metrics_snapshot()
        return json_safe(snapshot)
