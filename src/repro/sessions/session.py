"""One object's tracking session: filter + zone machines + confidence.

A :class:`TrackingSession` owns everything per-object: the motion
filter (Kalman or particle, behind the
:class:`~repro.tracking.TrackFilter` protocol), the object's zone FSMs,
and its idle bookkeeping.  The piece that closes ROADMAP item 2's
"confidence dropped on the floor": every fix arrives with the guard
layer's measurement confidence, and :func:`confidence_to_sigma` maps it
into the filter's per-update measurement noise.

The mapping: the guard's quality weights scale a link's LP rows
linearly with confidence ``c``, i.e. the measurement is trusted ``c``
times as much — for a Gaussian observation that is a variance inflation
of ``1/c``, so the fix noise becomes ``sigma / sqrt(c)``.  A confidence
floor keeps a near-zero-confidence fix from inflating sigma to
infinity: the fix still nudges the filter (never *dropped*), just very
weakly.  ``confidence=1.0`` reproduces the plain filter bit-for-bit.
"""

from __future__ import annotations

import math

from ..geometry import Point
from ..tracking import TrackFilter
from .fsm import FSMConfig, ObjectZoneTracker
from .zones import ZoneMap

__all__ = ["confidence_to_sigma", "SessionUpdate", "TrackingSession"]


def confidence_to_sigma(
    base_sigma_m: float, confidence: float, floor: float = 0.05
) -> float:
    """Measurement noise for one fix given its guard confidence.

    ``sigma / sqrt(max(confidence, floor))`` — the variance-inflation
    dual of the guard layer's linear quality weighting (see the module
    docstring).  Confidence above 1 is clamped to 1 (never *deflate*
    below the configured noise).
    """
    if base_sigma_m <= 0:
        raise ValueError("base sigma must be positive")
    if not 0 < floor <= 1:
        raise ValueError("confidence floor must be in (0, 1]")
    c = min(1.0, max(confidence, floor))
    return base_sigma_m / math.sqrt(c)


class SessionUpdate:
    """Outcome of feeding one fix into a session.

    Attributes
    ----------
    object_id / t_s:
        Echoed identity and fix time.
    position:
        The filtered track position after this update.
    sigma_m:
        The filter's posterior position uncertainty.
    measurement_sigma_m:
        The (possibly confidence-inflated) noise this fix was fused at.
    zone:
        The track's primary zone after this update (``None`` outside
        every zone).
    transitions:
        Confirmed FSM transitions this fix triggered, as
        ``(kind, zone, t_s, dwell_s)`` tuples, exits first.
    """

    __slots__ = (
        "object_id",
        "t_s",
        "position",
        "sigma_m",
        "measurement_sigma_m",
        "zone",
        "transitions",
    )

    def __init__(
        self,
        object_id: str,
        t_s: float,
        position: Point,
        sigma_m: float,
        measurement_sigma_m: float,
        zone: str | None,
        transitions: list,
    ) -> None:
        self.object_id = object_id
        self.t_s = t_s
        self.position = position
        self.sigma_m = sigma_m
        self.measurement_sigma_m = measurement_sigma_m
        self.zone = zone
        self.transitions = transitions

    def to_dict(self) -> dict:
        """Wire form of the track state (events travel separately)."""
        return {
            "object_id": self.object_id,
            "t_s": self.t_s,
            "position": {"x": self.position.x, "y": self.position.y},
            "sigma_m": self.sigma_m,
            "zone": self.zone,
        }


class TrackingSession:
    """Per-object state: filter, zone machines, idle bookkeeping.

    Parameters
    ----------
    object_id:
        The tracked object's identity.
    track_filter:
        The motion filter fusing this object's fixes.
    zones:
        The shared zone map (primary assignment).
    fsm_config:
        Shared debounce thresholds.
    base_sigma_m / confidence_floor / modulate_noise:
        The confidence-to-noise mapping knobs; ``modulate_noise=False``
        is the confidence-blind reference arm (benchmarked against the
        modulated one in ``bench_tracking``).
    """

    def __init__(
        self,
        object_id: str,
        track_filter: TrackFilter,
        zones: ZoneMap,
        fsm_config: FSMConfig | None = None,
        base_sigma_m: float = 1.5,
        confidence_floor: float = 0.05,
        modulate_noise: bool = True,
    ) -> None:
        if not object_id:
            raise ValueError("a session needs a non-empty object id")
        self.object_id = object_id
        self.filter = track_filter
        self.zones = zones
        self.fsm = ObjectZoneTracker(fsm_config)
        self.base_sigma_m = base_sigma_m
        self.confidence_floor = confidence_floor
        self.modulate_noise = modulate_noise
        self.last_seen_s: float | None = None
        self.updates = 0

    # ------------------------------------------------------------------
    def observe(
        self, t_s: float, fix: Point, confidence: float = 1.0
    ) -> SessionUpdate:
        """Fuse one fix: filter step, zone machines, update record.

        ``t_s`` must be non-decreasing per object (the caller's logical
        clock); the first fix initializes the filter with ``dt = 0``.
        """
        if self.last_seen_s is not None and t_s < self.last_seen_s:
            raise ValueError(
                f"fix time {t_s} precedes the session clock "
                f"{self.last_seen_s} for object {self.object_id!r}"
            )
        dt_s = 0.0 if self.last_seen_s is None else t_s - self.last_seen_s
        self.last_seen_s = t_s
        self.updates += 1
        if self.modulate_noise:
            sigma = confidence_to_sigma(
                self.base_sigma_m, confidence, self.confidence_floor
            )
        else:
            sigma = self.base_sigma_m
        position = self.filter.step(dt_s, fix, measurement_sigma_m=sigma)
        primary = self.zones.primary(position)
        transitions = self.fsm.observe(t_s, primary)
        return SessionUpdate(
            object_id=self.object_id,
            t_s=t_s,
            position=position,
            sigma_m=self.filter.position_sigma_m(),
            measurement_sigma_m=sigma,
            zone=primary,
            transitions=transitions,
        )

    # ------------------------------------------------------------------
    # State capture (crash-consistent snapshots)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe full session state (filter, FSMs, clock)."""
        return {
            "filter": self.filter.state_dict(),
            "fsm": self.fsm.state_dict(),
            "last_seen_s": self.last_seen_s,
            "updates": self.updates,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        The session must have been constructed with the same
        configuration (and, for particle filters, the same
        object-keyed RNG seed) as the one that was captured.
        """
        self.filter.restore_state(state["filter"])
        self.fsm.restore_state(state["fsm"])
        last = state["last_seen_s"]
        self.last_seen_s = None if last is None else float(last)
        self.updates = int(state["updates"])

    # ------------------------------------------------------------------
    def idle_for(self, now_s: float) -> float:
        """Seconds since the last fix (``inf`` before any fix)."""
        if self.last_seen_s is None:
            return math.inf
        return now_s - self.last_seen_s

    def close(self, t_s: float) -> list[tuple[str, str, float, float]]:
        """Force-exit confirmed zones (eviction); returns the exits."""
        return self.fsm.flush(t_s)
