"""Polygon zones over a venue and deterministic zone assignment.

A :class:`Zone` is a named polygon region of interest (a room, an aisle,
a restricted cage).  A :class:`ZoneMap` is an *ordered* collection of
zones with one job: map a position to its **primary zone** — the first
zone, in map order, whose polygon contains the point.  Ordering is the
tie-break: a fix landing exactly on a shared boundary edge belongs to
the lower-indexed zone, deterministically, on every run and platform.
That single rule is what makes the session layer's zone-event streams
byte-identical across replays.

Zone maps are usually derived from the floor plan with
:meth:`ZoneMap.grid` (an R x C partition of the boundary's bounding
box); arbitrary hand-drawn zones compose the same way via the
constructor.  Grid maps answer :meth:`ZoneMap.primary` in O(1) by cell
arithmetic, falling back to the generic ordered containment scan only
on the degenerate cells — the fast path and the scan agree everywhere
by construction (the arithmetic only *nominates* candidate cells; the
containment predicate always gets the final word).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..geometry import Point, Polygon

__all__ = ["Zone", "ZoneMap"]


@dataclass(frozen=True)
class Zone:
    """One named region of interest.

    Attributes
    ----------
    name:
        Unique zone identifier (``"z0-0"`` for grid cells, or a
        caller-chosen label like ``"storeroom"``).
    polygon:
        The zone's extent.  Zones may overlap; the :class:`ZoneMap`
        order resolves membership.
    """

    name: str
    polygon: Polygon

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a zone needs a non-empty name")

    def contains(self, p: Point) -> bool:
        """True when ``p`` is inside the zone (boundary inclusive)."""
        return self.polygon.contains(p, boundary=True)


class ZoneMap:
    """An ordered set of zones with deterministic primary assignment.

    Parameters
    ----------
    zones:
        The zones, in priority order.  Names must be unique.

    The map's one semantic guarantee: :meth:`primary` returns the *first*
    zone in this order containing the point (boundary inclusive), or
    ``None`` when no zone does.  Every consumer — FSMs, occupancy
    counters, geofence rules — sees the world through that assignment,
    so an object is in at most one zone at a time and zone handoffs are
    exact exit/enter pairs.
    """

    def __init__(self, zones: Iterable[Zone]) -> None:
        self.zones: tuple[Zone, ...] = tuple(zones)
        if not self.zones:
            raise ValueError("a zone map needs at least one zone")
        names = [z.name for z in self.zones]
        if len(set(names)) != len(names):
            raise ValueError("zone names must be unique")
        self._index = {z.name: i for i, z in enumerate(self.zones)}
        # Grid acceleration state; populated by ``grid()``.
        self._grid: tuple[float, float, float, float, int, int] | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.zones)

    def __iter__(self):
        return iter(self.zones)

    def names(self) -> tuple[str, ...]:
        """Zone names in map (priority) order."""
        return tuple(z.name for z in self.zones)

    def zone(self, name: str) -> Zone:
        """Look one zone up by name."""
        try:
            return self.zones[self._index[name]]
        except KeyError:
            raise KeyError(f"unknown zone {name!r}") from None

    # ------------------------------------------------------------------
    @classmethod
    def grid(cls, area: Polygon, rows: int, cols: int) -> "ZoneMap":
        """An ``rows x cols`` partition of ``area``'s bounding box.

        Cells are named ``z<row>-<col>`` and ordered row-major, so a
        point on an interior cell edge resolves to the lower-indexed
        (north/west) cell.  Cells that fall entirely outside a
        non-convex venue simply never match a fix — fixes are always
        inside the venue.
        """
        if rows < 1 or cols < 1:
            raise ValueError("grid shape must be at least 1x1")
        x0, y0, x1, y1 = area.bounding_box()
        if x1 <= x0 or y1 <= y0:
            raise ValueError("area bounding box is degenerate")
        dx = (x1 - x0) / cols
        dy = (y1 - y0) / rows
        zones = []
        for r in range(rows):
            for c in range(cols):
                zones.append(
                    Zone(
                        f"z{r}-{c}",
                        Polygon.rectangle(
                            x0 + c * dx,
                            y0 + r * dy,
                            x0 + (c + 1) * dx,
                            y0 + (r + 1) * dy,
                        ),
                    )
                )
        built = cls(zones)
        built._grid = (x0, y0, dx, dy, rows, cols)
        return built

    # ------------------------------------------------------------------
    def primary(self, p: Point) -> str | None:
        """Name of the first zone containing ``p``, or ``None``.

        Grid maps nominate the point's cell plus its north/west
        neighbours by arithmetic (a point exactly on a shared edge is
        contained by both cells; the lower index must win) and run the
        ordered containment scan over just those candidates.  Arbitrary
        maps scan all zones in order.
        """
        if self._grid is not None:
            return self._primary_grid(p)
        for zone in self.zones:
            if zone.contains(p):
                return zone.name
        return None

    def _primary_grid(self, p: Point) -> str | None:
        x0, y0, dx, dy, rows, cols = self._grid  # type: ignore[misc]
        ci = math.floor((p.x - x0) / dx)
        ri = math.floor((p.y - y0) / dy)
        # Candidate cells in index (priority) order: the north/west
        # neighbours come first so shared-edge ties resolve low.
        candidates = []
        for r in (ri - 1, ri):
            for c in (ci - 1, ci):
                if 0 <= r < rows and 0 <= c < cols:
                    candidates.append(r * cols + c)
        for idx in candidates:
            if self.zones[idx].contains(p):
                return self.zones[idx].name
        return None

    # ------------------------------------------------------------------
    def membership(self, p: Point) -> tuple[str, ...]:
        """Names of *every* zone containing ``p`` (diagnostics only).

        The session layer never uses this — membership is exclusive via
        :meth:`primary` — but overlap inspection is handy in tests and
        tooling.
        """
        return tuple(z.name for z in self.zones if z.contains(p))
