"""Moving-object tracking on top of NomLoc fixes (beyond-paper feature)."""

from .kalman import KalmanConfig, KalmanTracker
from .particle_filter import ParticleFilterConfig, ParticleFilterTracker
from .tracker import NomLocTracker, TrackFilter, TrackingResult
from .trajectories import Trajectory, random_trajectory, waypoint_trajectory

__all__ = [
    "Trajectory",
    "waypoint_trajectory",
    "random_trajectory",
    "ParticleFilterConfig",
    "ParticleFilterTracker",
    "KalmanConfig",
    "KalmanTracker",
    "TrackFilter",
    "NomLocTracker",
    "TrackingResult",
]
