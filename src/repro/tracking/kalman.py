"""Constant-velocity Kalman filter over NomLoc fixes.

With a linear CV motion model and position-only measurements the optimal
linear filter is a plain Kalman filter — no linearization needed.  It is
cheaper than the particle filter and optimal under Gaussian assumptions,
but venue-blind: it cannot exploit walls and boundaries the way the
particle filter's legality weighting does.  Both are compared in the
tracking tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Point

__all__ = ["KalmanConfig", "KalmanTracker"]


@dataclass(frozen=True)
class KalmanConfig:
    """Kalman filter tuning.

    Attributes
    ----------
    acceleration_noise:
        Std of the white-acceleration process noise (m/s^2); models
        manoeuvres.
    measurement_sigma_m:
        Assumed std of NomLoc position fixes.
    initial_position_sigma_m:
        Prior position uncertainty before the first update.
    initial_velocity_sigma:
        Prior velocity uncertainty (m/s).
    """

    acceleration_noise: float = 0.8
    measurement_sigma_m: float = 1.5
    initial_position_sigma_m: float = 10.0
    initial_velocity_sigma: float = 1.5

    def __post_init__(self) -> None:
        if self.acceleration_noise <= 0 or self.measurement_sigma_m <= 0:
            raise ValueError("noise parameters must be positive")
        if self.initial_position_sigma_m <= 0 or self.initial_velocity_sigma <= 0:
            raise ValueError("initial uncertainties must be positive")


class KalmanTracker:
    """CV Kalman filter with state ``[x, y, vx, vy]``."""

    def __init__(self, config: KalmanConfig | None = None) -> None:
        self.config = config or KalmanConfig()
        self.state = np.zeros(4)
        c = self.config
        self.covariance = np.diag(
            [
                c.initial_position_sigma_m**2,
                c.initial_position_sigma_m**2,
                c.initial_velocity_sigma**2,
                c.initial_velocity_sigma**2,
            ]
        )
        self._initialized = False
        self.updates = 0

    # ------------------------------------------------------------------
    def predict(self, dt_s: float) -> None:
        """Propagate the state ``dt_s`` seconds under the CV model."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        if dt_s == 0 or not self._initialized:
            return
        f = np.eye(4)
        f[0, 2] = dt_s
        f[1, 3] = dt_s
        q_acc = self.config.acceleration_noise**2
        dt2, dt3, dt4 = dt_s**2, dt_s**3, dt_s**4
        q_block = np.array([[dt4 / 4, dt3 / 2], [dt3 / 2, dt2]]) * q_acc
        q = np.zeros((4, 4))
        q[np.ix_([0, 2], [0, 2])] = q_block
        q[np.ix_([1, 3], [1, 3])] = q_block
        self.state = f @ self.state
        self.covariance = f @ self.covariance @ f.T + q

    def update(
        self, fix: Point, measurement_sigma_m: float | None = None
    ) -> None:
        """Condition on one position fix.

        ``measurement_sigma_m`` overrides the configured fix noise for
        this update only — the hook the session layer uses to inflate R
        for low-confidence fixes instead of dropping them.
        """
        sigma = (
            self.config.measurement_sigma_m
            if measurement_sigma_m is None
            else measurement_sigma_m
        )
        if sigma <= 0:
            raise ValueError("measurement sigma must be positive")
        z = np.array([fix.x, fix.y])
        if not self._initialized:
            self.state[:2] = z
            self._initialized = True
            self.updates += 1
            return
        h = np.zeros((2, 4))
        h[0, 0] = h[1, 1] = 1.0
        r = np.eye(2) * sigma**2
        innovation = z - h @ self.state
        s = h @ self.covariance @ h.T + r
        gain = self.covariance @ h.T @ np.linalg.solve(s, np.eye(2))
        self.state = self.state + gain @ innovation
        self.covariance = (np.eye(4) - gain @ h) @ self.covariance
        # Symmetrize against numerical drift.
        self.covariance = (self.covariance + self.covariance.T) / 2.0
        self.updates += 1

    def step(
        self,
        dt_s: float,
        fix: Point,
        measurement_sigma_m: float | None = None,
    ) -> Point:
        """Predict, update, and return the posterior mean position."""
        self.predict(dt_s)
        self.update(fix, measurement_sigma_m=measurement_sigma_m)
        return self.estimate()

    # ------------------------------------------------------------------
    # State capture (crash-consistent snapshots)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe full filter state.

        Python floats serialize through JSON as their shortest
        round-tripping repr, so a snapshot restored on another process
        continues the stream bit-identically.
        """
        return {
            "kind": "kalman",
            "state": [float(v) for v in self.state],
            "covariance": [[float(v) for v in row] for row in self.covariance],
            "initialized": self._initialized,
            "updates": self.updates,
        }

    def restore_state(self, state) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        if state.get("kind") != "kalman":
            raise ValueError(
                f"snapshot kind {state.get('kind')!r} is not 'kalman'"
            )
        self.state = np.array(state["state"], dtype=float)
        self.covariance = np.array(state["covariance"], dtype=float)
        self._initialized = bool(state["initialized"])
        self.updates = int(state["updates"])

    # ------------------------------------------------------------------
    def estimate(self) -> Point:
        """Posterior mean position."""
        return Point(float(self.state[0]), float(self.state[1]))

    def velocity(self) -> tuple[float, float]:
        """Posterior mean velocity (m/s)."""
        return (float(self.state[2]), float(self.state[3]))

    def position_covariance(self) -> np.ndarray:
        """Posterior 2x2 position covariance (a copy)."""
        return self.covariance[:2, :2].copy()

    def position_sigma_m(self) -> float:
        """RMS of the position marginal std devs."""
        return float(
            np.sqrt((self.covariance[0, 0] + self.covariance[1, 1]) / 2.0)
        )
