"""Particle-filter tracking over NomLoc location fixes.

NomLoc produces independent per-query fixes; a moving target benefits from
fusing them with a motion model.  This is a standard constant-velocity
bootstrap particle filter whose measurement model treats each NomLoc fix
as a noisy position observation, with venue awareness: particles that
leave the floor plan (or enter obstacle interiors) are heavily
down-weighted, which encodes exactly the area-boundary prior the SP
localizer itself uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..environment import FloorPlan
from ..geometry import Point

__all__ = ["ParticleFilterConfig", "ParticleFilterTracker"]


@dataclass(frozen=True)
class ParticleFilterConfig:
    """Particle filter tuning.

    Attributes
    ----------
    num_particles:
        Particle count; a few hundred suffices in 2-D.
    velocity_noise_mps:
        Std of the per-second velocity random walk (manoeuvre noise).
    initial_speed_mps:
        Std of the initial velocity prior.
    measurement_sigma_m:
        Assumed std of NomLoc fixes (meter-scale per the evaluation).
    resample_fraction:
        Resample when the effective sample size falls below this fraction
        of ``num_particles``.
    outside_penalty:
        Multiplicative weight penalty for particles outside the venue or
        inside obstacle interiors.
    """

    num_particles: int = 400
    velocity_noise_mps: float = 0.6
    initial_speed_mps: float = 0.8
    measurement_sigma_m: float = 1.5
    resample_fraction: float = 0.5
    outside_penalty: float = 1e-6

    def __post_init__(self) -> None:
        if self.num_particles < 2:
            raise ValueError("need at least two particles")
        if self.measurement_sigma_m <= 0:
            raise ValueError("measurement sigma must be positive")
        if not 0 < self.resample_fraction <= 1:
            raise ValueError("resample fraction must be in (0, 1]")
        if not 0 < self.outside_penalty <= 1:
            raise ValueError("outside penalty must be in (0, 1]")


class ParticleFilterTracker:
    """Constant-velocity bootstrap filter confined to a floor plan."""

    def __init__(
        self,
        plan: FloorPlan,
        config: ParticleFilterConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.plan = plan
        self.config = config or ParticleFilterConfig()
        self.rng = rng or np.random.default_rng()
        n = self.config.num_particles
        seeds = plan.boundary.sample_points(n, self.rng)
        self.states = np.zeros((n, 4))  # x, y, vx, vy
        self.states[:, 0] = [p.x for p in seeds]
        self.states[:, 1] = [p.y for p in seeds]
        self.states[:, 2:] = self.rng.normal(
            0.0, self.config.initial_speed_mps, size=(n, 2)
        )
        self.weights = np.full(n, 1.0 / n)
        self.updates = 0

    # ------------------------------------------------------------------
    def predict(self, dt_s: float) -> None:
        """Propagate particles by ``dt_s`` under the CV + noise model."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        if dt_s == 0:
            return
        noise = self.rng.normal(
            0.0,
            self.config.velocity_noise_mps * np.sqrt(dt_s),
            size=(len(self.states), 2),
        )
        self.states[:, 2:] += noise
        self.states[:, 0] += self.states[:, 2] * dt_s
        self.states[:, 1] += self.states[:, 3] * dt_s

    def update(
        self, fix: Point, measurement_sigma_m: float | None = None
    ) -> None:
        """Condition on one NomLoc fix and resample when degenerate.

        ``measurement_sigma_m`` overrides the configured fix noise for
        this update only — a low-confidence fix flattens the likelihood
        instead of being dropped (the session layer's
        confidence-to-noise mapping).
        """
        sigma = (
            self.config.measurement_sigma_m
            if measurement_sigma_m is None
            else measurement_sigma_m
        )
        if sigma <= 0:
            raise ValueError("measurement sigma must be positive")
        dx = self.states[:, 0] - fix.x
        dy = self.states[:, 1] - fix.y
        likelihood = np.exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma))
        penalty = np.array(
            [
                1.0 if self._is_legal(x, y) else self.config.outside_penalty
                for x, y in self.states[:, :2]
            ]
        )
        self.weights = self.weights * likelihood * penalty
        total = self.weights.sum()
        if total <= 0 or not np.isfinite(total):
            # Filter diverged: re-seed around the fix.
            self._reseed(fix)
            return
        self.weights /= total
        self.updates += 1
        if self.effective_sample_size() < (
            self.config.resample_fraction * len(self.states)
        ):
            self._systematic_resample()

    def step(
        self,
        dt_s: float,
        fix: Point,
        measurement_sigma_m: float | None = None,
    ) -> Point:
        """Predict, update, and return the posterior mean position."""
        self.predict(dt_s)
        self.update(fix, measurement_sigma_m=measurement_sigma_m)
        return self.estimate()

    # ------------------------------------------------------------------
    # State capture (crash-consistent snapshots)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe full filter state, including the RNG.

        The particle cloud *and* the generator's bit-level state are
        captured (``Generator.bit_generator.state`` is a plain dict of
        Python ints), so a restored filter draws the exact same noise,
        resampling positions and roughening as the uninterrupted one —
        the bit-identical-continuation contract the durable session
        store snapshots depend on.
        """
        return {
            "kind": "particle",
            "states": [[float(v) for v in row] for row in self.states],
            "weights": [float(w) for w in self.weights],
            "updates": self.updates,
            "rng": self.rng.bit_generator.state,
        }

    def restore_state(self, state) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        The tracker must have been constructed with the same
        configuration (particle count) and an RNG of the same bit
        generator family; the snapshot then overwrites the cloud and
        rewinds the generator to the captured stream position.
        """
        if state.get("kind") != "particle":
            raise ValueError(
                f"snapshot kind {state.get('kind')!r} is not 'particle'"
            )
        states = np.array(state["states"], dtype=float)
        if states.shape != self.states.shape:
            raise ValueError(
                f"snapshot particle cloud {states.shape} does not match "
                f"the configured {self.states.shape}"
            )
        rng_state = state["rng"]
        if rng_state["bit_generator"] != type(self.rng.bit_generator).__name__:
            raise ValueError(
                f"snapshot RNG {rng_state['bit_generator']!r} does not "
                f"match {type(self.rng.bit_generator).__name__!r}"
            )
        self.states = states
        self.weights = np.array(state["weights"], dtype=float)
        self.updates = int(state["updates"])
        self.rng.bit_generator.state = rng_state

    # ------------------------------------------------------------------
    def estimate(self) -> Point:
        """Weighted posterior mean position."""
        x = float(np.average(self.states[:, 0], weights=self.weights))
        y = float(np.average(self.states[:, 1], weights=self.weights))
        return Point(x, y)

    def effective_sample_size(self) -> float:
        """``1 / sum(w^2)`` — the usual degeneracy diagnostic."""
        return float(1.0 / np.sum(self.weights**2))

    def position_covariance(self) -> np.ndarray:
        """Weighted 2x2 covariance of the particle positions."""
        mean = np.average(self.states[:, :2], weights=self.weights, axis=0)
        centered = self.states[:, :2] - mean
        return np.einsum(
            "n,ni,nj->ij", self.weights, centered, centered
        ) / float(np.sum(self.weights))

    def position_sigma_m(self) -> float:
        """RMS of the position marginal std devs (matches the Kalman
        tracker's definition, so session-level track confidence reads
        the same for either filter)."""
        cov = self.position_covariance()
        return float(np.sqrt((cov[0, 0] + cov[1, 1]) / 2.0))

    def spread_m(self) -> float:
        """Weighted RMS distance of particles from the estimate."""
        est = self.estimate()
        d2 = (self.states[:, 0] - est.x) ** 2 + (self.states[:, 1] - est.y) ** 2
        return float(np.sqrt(np.average(d2, weights=self.weights)))

    # ------------------------------------------------------------------
    def _is_legal(self, x: float, y: float) -> bool:
        p = Point(float(x), float(y))
        if not self.plan.contains(p):
            return False
        return not any(
            o.polygon.contains(p, boundary=False) for o in self.plan.obstacles
        )

    def _systematic_resample(self) -> None:
        n = len(self.states)
        positions = (self.rng.uniform() + np.arange(n)) / n
        cumulative = np.cumsum(self.weights)
        cumulative[-1] = 1.0
        indexes = np.searchsorted(cumulative, positions)
        self.states = self.states[indexes].copy()
        # Roughen to avoid sample impoverishment.
        self.states[:, :2] += self.rng.normal(0.0, 0.05, size=(n, 2))
        self.weights = np.full(n, 1.0 / n)

    def _reseed(self, around: Point) -> None:
        n = len(self.states)
        self.states[:, 0] = around.x + self.rng.normal(0.0, 2.0, n)
        self.states[:, 1] = around.y + self.rng.normal(0.0, 2.0, n)
        self.states[:, 2:] = self.rng.normal(
            0.0, self.config.initial_speed_mps, size=(n, 2)
        )
        self.weights = np.full(n, 1.0 / n)
