"""End-to-end tracking: NomLoc fixes + particle filter along a trajectory.

Bridges the per-query :class:`~repro.core.NomLocSystem` and the
:class:`~repro.tracking.particle_filter.ParticleFilterTracker` into a
moving-target pipeline, and scores both the raw fixes and the filtered
track against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..core import NomLocSystem
from ..geometry import Point
from .particle_filter import ParticleFilterConfig, ParticleFilterTracker
from .trajectories import Trajectory

__all__ = ["TrackFilter", "TrackingResult", "NomLocTracker"]


class TrackFilter(Protocol):
    """Anything that fuses a fix stream: particle filter, Kalman, ...

    Beyond stepping, a filter exposes its posterior position uncertainty
    (:meth:`position_sigma_m`) so the session layer can report per-track
    confidence, and accepts a per-update measurement-noise override so
    low-confidence fixes are *de-weighted* instead of dropped.
    """

    updates: int

    def step(
        self,
        dt_s: float,
        fix: Point,
        measurement_sigma_m: float | None = None,
    ) -> Point:
        """Advance ``dt_s``, fuse ``fix``, return the new estimate.

        ``measurement_sigma_m`` overrides the filter's configured fix
        noise for this update only (``None`` keeps the configured one).
        """
        ...

    def position_sigma_m(self) -> float:
        """Posterior position uncertainty (RMS of the marginal stds)."""
        ...

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the full filter state (incl. RNG).

        The durability contract: ``restore_state(state_dict())`` on a
        same-configured filter continues the fix stream bit-identically
        — exactly what :class:`repro.sessions.durable.SessionStore`
        snapshots rely on.
        """
        ...

    def restore_state(self, state) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        ...


@dataclass(frozen=True)
class TrackingResult:
    """Raw and filtered tracks against ground truth."""

    trajectory: Trajectory
    raw_fixes: tuple[Point, ...]
    filtered: tuple[Point, ...]

    def __post_init__(self) -> None:
        if not (
            len(self.trajectory) == len(self.raw_fixes) == len(self.filtered)
        ):
            raise ValueError("tracks must align with the trajectory")

    def raw_errors(self) -> list[float]:
        """Per-sample error of the unfiltered NomLoc fixes."""
        return [
            fix.distance_to(truth)
            for fix, truth in zip(self.raw_fixes, self.trajectory.positions)
        ]

    def filtered_errors(self) -> list[float]:
        """Per-sample error of the filtered track."""
        return [
            fix.distance_to(truth)
            for fix, truth in zip(self.filtered, self.trajectory.positions)
        ]

    @property
    def raw_rmse(self) -> float:
        e = np.asarray(self.raw_errors())
        return float(np.sqrt(np.mean(e**2)))

    @property
    def filtered_rmse(self) -> float:
        e = np.asarray(self.filtered_errors())
        return float(np.sqrt(np.mean(e**2)))

    def improvement(self) -> float:
        """Relative RMSE reduction from filtering (1 - filtered/raw)."""
        if self.raw_rmse <= 0:
            return 0.0
        return 1.0 - self.filtered_rmse / self.raw_rmse


class NomLocTracker:
    """Track a moving object through a scenario.

    Parameters
    ----------
    system:
        The (already configured) NomLoc deployment to query per sample.
    filter_config:
        Particle-filter tuning; the default assumes meter-scale fixes.
    warmup_updates:
        Number of initial samples during which the filter estimate is
        replaced by the raw fix (the uniform prior needs a few updates to
        converge; reporting it unconverged would penalize the filter for
        its initialization, not its tracking).
    """

    def __init__(
        self,
        system: NomLocSystem,
        filter_config: ParticleFilterConfig | None = None,
        warmup_updates: int = 2,
        make_filter: Callable[[np.random.Generator], TrackFilter] | None = None,
    ) -> None:
        if warmup_updates < 0:
            raise ValueError("warmup_updates must be non-negative")
        self.system = system
        self.filter_config = filter_config or ParticleFilterConfig()
        self.warmup_updates = warmup_updates
        self._make_filter = make_filter

    def _build_filter(self, rng: np.random.Generator) -> TrackFilter:
        if self._make_filter is not None:
            return self._make_filter(rng)
        return ParticleFilterTracker(
            self.system.scenario.plan, self.filter_config, rng
        )

    def track(
        self, trajectory: Trajectory, rng: np.random.Generator
    ) -> TrackingResult:
        """Localize every trajectory sample and filter the fix stream."""
        fusion = self._build_filter(
            np.random.default_rng(rng.integers(0, 2**63))
        )
        raw: list[Point] = []
        filtered: list[Point] = []
        prev_t: float | None = None
        for t, truth in trajectory:
            fix = self.system.locate(truth, rng).position
            raw.append(fix)
            dt = 0.0 if prev_t is None else t - prev_t
            estimate = fusion.step(dt, fix)
            filtered.append(
                fix if fusion.updates <= self.warmup_updates else estimate
            )
            prev_t = t
        return TrackingResult(trajectory, tuple(raw), tuple(filtered))
