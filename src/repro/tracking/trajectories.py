"""Ground-truth trajectories for moving objects.

The paper evaluates stationary objects; real ILBS targets move.  This
module generates physically plausible indoor walks — waypoint paths with
constant speed, confined to the venue and steering around obstacles — that
the tracking filter is evaluated against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..environment import FloorPlan
from ..geometry import Point, Segment

__all__ = ["Trajectory", "waypoint_trajectory", "random_trajectory"]


@dataclass(frozen=True)
class Trajectory:
    """A timestamped ground-truth path.

    Attributes
    ----------
    times_s:
        Strictly increasing sample times.
    positions:
        Object position at each sample time.
    """

    times_s: tuple[float, ...]
    positions: tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.positions):
            raise ValueError("times and positions must align")
        if len(self.times_s) < 1:
            raise ValueError("a trajectory needs at least one sample")
        diffs = np.diff(self.times_s)
        if np.any(diffs <= 0):
            raise ValueError("times must be strictly increasing")

    def __len__(self) -> int:
        return len(self.times_s)

    def __iter__(self):
        return iter(zip(self.times_s, self.positions))

    @property
    def duration_s(self) -> float:
        return self.times_s[-1] - self.times_s[0]

    def length_m(self) -> float:
        """Total path length."""
        return sum(
            a.distance_to(b)
            for a, b in zip(self.positions, self.positions[1:])
        )

    def average_speed(self) -> float:
        """Mean speed in m/s (0 for single-sample trajectories)."""
        if self.duration_s <= 0:
            return 0.0
        return self.length_m() / self.duration_s


def waypoint_trajectory(
    waypoints: list[Point],
    speed_mps: float = 1.2,
    sample_interval_s: float = 1.0,
) -> Trajectory:
    """Constant-speed walk through ``waypoints``, resampled uniformly.

    ``speed_mps`` defaults to a typical indoor walking pace.
    """
    if len(waypoints) < 2:
        raise ValueError("need at least two waypoints")
    if speed_mps <= 0 or sample_interval_s <= 0:
        raise ValueError("speed and sample interval must be positive")
    # Cumulative arc length over the waypoint polyline.
    seg_lengths = [
        a.distance_to(b) for a, b in zip(waypoints, waypoints[1:])
    ]
    if any(l <= 1e-12 for l in seg_lengths):
        raise ValueError("consecutive waypoints must be distinct")
    total = sum(seg_lengths)
    duration = total / speed_mps
    times = np.arange(0.0, duration + 1e-9, sample_interval_s)
    if times[-1] < duration - 1e-9:
        times = np.append(times, duration)

    positions = []
    cumulative = np.concatenate([[0.0], np.cumsum(seg_lengths)])
    for t in times:
        arc = min(t * speed_mps, total)
        seg_idx = int(np.searchsorted(cumulative, arc, side="right")) - 1
        seg_idx = min(seg_idx, len(seg_lengths) - 1)
        local = arc - cumulative[seg_idx]
        a, b = waypoints[seg_idx], waypoints[seg_idx + 1]
        frac = local / seg_lengths[seg_idx]
        positions.append(a + (b - a) * frac)
    return Trajectory(tuple(float(t) for t in times), tuple(positions))


def random_trajectory(
    plan: FloorPlan,
    rng: np.random.Generator,
    num_waypoints: int = 5,
    speed_mps: float = 1.2,
    sample_interval_s: float = 1.0,
    margin: float = 0.5,
    max_attempts: int = 500,
) -> Trajectory:
    """A random waypoint walk inside ``plan``.

    Consecutive waypoints are resampled until the straight leg between
    them stays inside the venue and clear of obstacle interiors, so the
    walk is physically realizable.
    """
    if num_waypoints < 2:
        raise ValueError("need at least two waypoints")
    waypoints = plan.boundary.sample_points(1, rng, margin=margin)
    attempts = 0
    while len(waypoints) < num_waypoints:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                "could not find a clear waypoint path; venue too cluttered"
            )
        candidate = plan.boundary.sample_points(1, rng, margin=margin)[0]
        leg = Segment(waypoints[-1], candidate)
        if candidate.distance_to(waypoints[-1]) < 1.0:
            continue
        if any(o.polygon.segment_crosses_interior(leg) for o in plan.obstacles):
            continue
        if any(w.blocks(leg) for w in plan.walls):
            continue
        waypoints.append(candidate)
    return waypoint_trajectory(waypoints, speed_mps, sample_interval_s)
