"""Terminal visualization of venues, deployments, and estimates."""

from .ascii_map import AsciiCanvas, render_floorplan, render_scenario
from .heatmap import HeatmapResult, render_heatmap

__all__ = [
    "AsciiCanvas",
    "render_floorplan",
    "render_scenario",
    "HeatmapResult",
    "render_heatmap",
]
