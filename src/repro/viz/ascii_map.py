"""ASCII rendering of floor plans, deployments, and estimates.

Terminal-friendly diagnostics: draw a venue with its obstacles and walls,
overlay APs / test sites / estimates / feasible regions, and print the
result.  Pure text — no plotting dependency — so it works everywhere the
library does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..environment import FloorPlan, Scenario
from ..geometry import Point, Polygon, Segment

__all__ = ["AsciiCanvas", "render_floorplan", "render_scenario"]

#: Glyphs used by the renderer, in increasing priority (later overwrites).
GLYPH_BOUNDARY = "#"
GLYPH_WALL = "|"
GLYPH_OBSTACLE = "%"
GLYPH_REGION = "~"


@dataclass
class AsciiCanvas:
    """A character raster with a world-to-cell transform.

    Attributes
    ----------
    width:
        Canvas width in characters.
    plan_bbox:
        ``(xmin, ymin, xmax, ymax)`` of the world window rendered.
    aspect:
        Character-cell aspect compensation; terminal cells are roughly
        twice as tall as wide, so y is compressed by this factor.
    """

    width: int
    plan_bbox: tuple[float, float, float, float]
    aspect: float = 0.5
    _grid: list[list[str]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.width < 10:
            raise ValueError("canvas width must be at least 10 characters")
        xmin, ymin, xmax, ymax = self.plan_bbox
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("degenerate world window")
        world_w = xmax - xmin
        world_h = ymax - ymin
        self._cell = world_w / (self.width - 1)
        self.height = max(3, int(round(world_h / self._cell * self.aspect)) + 1)
        self._grid = [[" "] * self.width for _ in range(self.height)]

    # ------------------------------------------------------------------
    def to_cell(self, p: Point) -> tuple[int, int] | None:
        """World point to ``(row, col)``, or ``None`` if off-canvas."""
        xmin, ymin, xmax, ymax = self.plan_bbox
        if not (
            xmin - 1e-9 <= p.x <= xmax + 1e-9
            and ymin - 1e-9 <= p.y <= ymax + 1e-9
        ):
            return None
        col = int(round((p.x - xmin) / self._cell))
        # Rows grow downward; world y grows upward.
        row = self.height - 1 - int(round((p.y - ymin) / self._cell * self.aspect))
        if 0 <= row < self.height and 0 <= col < self.width:
            return (row, col)
        return None

    def put(self, p: Point, glyph: str) -> None:
        """Stamp one character at the world position (silently clips)."""
        if len(glyph) != 1:
            raise ValueError("glyph must be a single character")
        cell = self.to_cell(p)
        if cell is not None:
            row, col = cell
            self._grid[row][col] = glyph

    def put_label(self, p: Point, label: str) -> None:
        """Stamp a short string starting at the world position."""
        cell = self.to_cell(p)
        if cell is None:
            return
        row, col = cell
        for i, ch in enumerate(label):
            if col + i < self.width:
                self._grid[row][col + i] = ch

    def draw_segment(self, seg: Segment, glyph: str) -> None:
        """Rasterize a world-space segment."""
        steps = max(
            2,
            int(seg.length() / self._cell * 2) + 1,
        )
        for k in range(steps + 1):
            t = k / steps
            self.put(seg.a + (seg.b - seg.a) * t, glyph)

    def fill_polygon(self, poly: Polygon, glyph: str) -> None:
        """Fill a polygon's interior cells."""
        xmin, ymin, xmax, ymax = poly.bounding_box()
        x = xmin
        while x <= xmax + 1e-9:
            y = ymin
            while y <= ymax + 1e-9:
                p = Point(x, y)
                if poly.contains(p):
                    self.put(p, glyph)
                y += self._cell / self.aspect / 2
            x += self._cell / 2

    def render(self) -> str:
        """The canvas as a newline-joined string."""
        return "\n".join("".join(row).rstrip() for row in self._grid)


def render_floorplan(
    plan: FloorPlan,
    width: int = 72,
    markers: dict[str, list[Point]] | None = None,
    labels: dict[str, Point] | None = None,
    region: Polygon | None = None,
) -> str:
    """Render a floor plan with optional overlays.

    Parameters
    ----------
    markers:
        ``glyph -> positions`` stamped after the structure (e.g.
        ``{"T": [truth], "E": [estimate]}``).
    labels:
        ``text -> position`` for multi-character annotations (AP names).
    region:
        A polygon filled with ``~`` before markers (feasible regions).
    """
    canvas = AsciiCanvas(width, plan.boundary.bounding_box())
    if region is not None:
        canvas.fill_polygon(region, GLYPH_REGION)
    for obstacle in plan.obstacles:
        canvas.fill_polygon(obstacle.polygon, GLYPH_OBSTACLE)
    for wall in plan.walls:
        canvas.draw_segment(wall.segment, GLYPH_WALL)
    for edge in plan.boundary.edges():
        canvas.draw_segment(edge, GLYPH_BOUNDARY)
    for glyph, points in (markers or {}).items():
        for p in points:
            canvas.put(p, glyph)
    for text, p in (labels or {}).items():
        canvas.put_label(p, text)
    return canvas.render()


def render_scenario(
    scenario: Scenario,
    width: int = 72,
    estimate: Point | None = None,
    truth: Point | None = None,
    region: Polygon | None = None,
) -> str:
    """Render a scenario: venue + AP deployment + optional query overlay.

    Static APs appear as their names, nomadic measurement sites as ``n``,
    test sites as ``.``, the ground truth as ``T``, the estimate as ``E``.
    """
    markers: dict[str, list[Point]] = {".": list(scenario.test_sites)}
    labels: dict[str, Point] = {}
    nomadic_sites: list[Point] = []
    for ap in scenario.aps:
        labels[ap.name] = ap.position
        if ap.nomadic:
            nomadic_sites.extend(s for s in ap.sites if s != ap.position)
    markers["n"] = nomadic_sites
    if truth is not None:
        markers["T"] = [truth]
    if estimate is not None:
        markers["E"] = [estimate]
    return render_floorplan(
        scenario.plan, width, markers=markers, labels=labels, region=region
    )
