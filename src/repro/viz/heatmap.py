"""ASCII heatmaps of spatial quantities over a venue.

The paper's Fig. 1 motivates everything: localization accuracy varies
across space.  :func:`render_heatmap` makes that visible in a terminal —
sample a quantity (localization error, PDP accuracy, coverage) over a
venue grid and shade each cell by magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..environment import FloorPlan
from ..geometry import Point
from .ascii_map import AsciiCanvas

__all__ = ["HeatmapResult", "render_heatmap"]

#: Shading ramp from low to high values.
RAMP = " .:-=+*#%@"


@dataclass(frozen=True)
class HeatmapResult:
    """A rendered heatmap plus its underlying samples.

    Attributes
    ----------
    text:
        The ASCII rendering.
    points:
        Sampled positions.
    values:
        Sampled quantity per position.
    vmin, vmax:
        The value range mapped onto the shading ramp.
    """

    text: str
    points: tuple[Point, ...]
    values: tuple[float, ...]
    vmin: float
    vmax: float

    def legend(self) -> str:
        """One-line ramp legend with the value range."""
        return (
            f"low {self.vmin:.2f} [{RAMP}] {self.vmax:.2f} high"
        )


def render_heatmap(
    plan: FloorPlan,
    sample: Callable[[Point], float],
    grid_spacing_m: float = 1.0,
    width: int = 72,
    vmin: float | None = None,
    vmax: float | None = None,
    skip_obstacles: bool = True,
) -> HeatmapResult:
    """Sample ``sample`` over the venue grid and shade the result.

    Parameters
    ----------
    sample:
        Function from position to a scalar (e.g. mean localization
        error at that point).
    vmin, vmax:
        Fixed ramp bounds; default to the sampled min/max (useful to
        share one scale across two heatmaps being compared).
    """
    if grid_spacing_m <= 0:
        raise ValueError("grid spacing must be positive")
    points = plan.boundary.grid_points(grid_spacing_m, margin=0.05)
    if skip_obstacles:
        points = [
            p
            for p in points
            if not any(
                o.polygon.contains(p, boundary=False) for o in plan.obstacles
            )
        ]
    if not points:
        raise ValueError("no sample points; grid too coarse for the venue")
    values = [float(sample(p)) for p in points]

    lo = vmin if vmin is not None else min(values)
    hi = vmax if vmax is not None else max(values)
    if hi <= lo:
        hi = lo + 1e-9

    canvas = AsciiCanvas(width, plan.boundary.bounding_box())
    for p, v in zip(points, values):
        frac = (v - lo) / (hi - lo)
        idx = int(np.clip(frac * (len(RAMP) - 1), 0, len(RAMP) - 1))
        glyph = RAMP[idx] if RAMP[idx] != " " else "."
        canvas.put(p, glyph)
    for edge in plan.boundary.edges():
        canvas.draw_segment(edge, "#")
    return HeatmapResult(
        canvas.render(), tuple(points), tuple(values), lo, hi
    )
