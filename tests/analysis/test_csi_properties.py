"""Tests for CSI property analysis (the paper's Sec. IV-A claims)."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_link,
    frequency_selectivity,
    rms_delay_spread_s,
    temporal_stability,
)
from repro.channel import (
    CSIMeasurement,
    CSISynthesizer,
    LinkSimulator,
    OFDMConfig,
)
from repro.core import estimate_pdp, estimate_rss
from repro.environment import FloorPlan, get_scenario
from repro.geometry import Point, Polygon


@pytest.fixture(scope="module")
def lab_batch():
    scen = get_scenario("lab")
    sim = LinkSimulator(scen.plan)
    rng = np.random.default_rng(0)
    return sim.measure_batch(scen.test_sites[0], scen.aps[1].position, 80, rng)


class TestTemporalStability:
    def test_validation(self, lab_batch):
        with pytest.raises(ValueError):
            temporal_stability(lab_batch[:1], estimate_pdp)

    def test_pdp_stabler_than_rssi(self, lab_batch):
        """The paper's stability claim: PDP varies less than coarse RSS."""
        cv_pdp = temporal_stability(lab_batch, estimate_pdp)
        cv_rss = temporal_stability(lab_batch, estimate_rss)
        assert cv_pdp < cv_rss

    def test_noiseless_static_channel_is_stable(self):
        plan = FloorPlan("r", Polygon.rectangle(0, 0, 10, 10))
        synth = CSISynthesizer(noise=None, rssi_jitter_db=0.0)
        sim = LinkSimulator(plan, synth)
        rng = np.random.default_rng(1)
        batch = sim.measure_batch(
            Point(1, 5), Point(9, 5), 20, rng, with_fading=False
        )
        assert temporal_stability(batch, estimate_pdp) < 1e-9


class TestFrequencySelectivity:
    def test_flat_channel_zero(self):
        cfg = OFDMConfig()
        m = CSIMeasurement(np.ones(56, dtype=complex), cfg)
        assert frequency_selectivity(m) == pytest.approx(0.0)

    def test_multipath_increases_selectivity(self):
        """Reflections create frequency selectivity; a single-path link
        (reflections disabled) is flat."""
        from repro.channel import TraceConfig

        plan = FloorPlan("r", Polygon.rectangle(0, 0, 30, 30))
        synth = CSISynthesizer(noise=None)
        rng = np.random.default_rng(2)
        sel = {}
        for name, order in (("single-path", 0), ("multipath", 2)):
            sim = LinkSimulator(
                plan,
                synth,
                trace_config=TraceConfig(
                    max_reflection_order=order, include_scatter=False
                ),
            )
            batch = sim.measure_batch(
                Point(2, 15), Point(28, 15), 20, rng, with_fading=False
            )
            sel[name] = np.mean([frequency_selectivity(m) for m in batch])
        assert sel["single-path"] < 0.01
        assert sel["multipath"] > 10 * sel["single-path"]

    def test_zero_energy_rejected(self):
        cfg = OFDMConfig()
        m = CSIMeasurement(np.zeros(56, dtype=complex), cfg)
        with pytest.raises(ValueError):
            frequency_selectivity(m)


class TestDelaySpread:
    def test_single_tap_near_zero_spread(self):
        cfg = OFDMConfig()
        m = CSIMeasurement(np.ones(56, dtype=complex), cfg)
        # Flat channel: residual spread only from the window main lobe
        # (about one tap width), far below any real multipath spread.
        assert rms_delay_spread_s(m) < 6e-8

    def test_lab_link_has_spread(self, lab_batch):
        spreads = [rms_delay_spread_s(m) for m in lab_batch[:10]]
        assert all(s > 0 for s in spreads)
        # Indoor spreads are tens to a couple hundred ns.
        assert np.mean(spreads) < 1e-6


class TestAnalyzeLink:
    def test_report(self, lab_batch):
        report = analyze_link(lab_batch)
        assert report.csi_stabler_than_rss
        assert report.mean_frequency_selectivity > 0
        assert report.mean_delay_spread_s > 0
        assert report.pdp_stability_cv > 0

    def test_validation(self, lab_batch):
        with pytest.raises(ValueError):
            analyze_link(lab_batch[:1])
