"""Tests for the fingerprinting and weighted-centroid baselines."""

import numpy as np
import pytest

from repro.baselines import (
    FingerprintLocalizer,
    StaticSPLocalizer,
    WeightedCentroidLocalizer,
)
from repro.core import SystemConfig
from repro.environment import get_scenario


@pytest.fixture(scope="module")
def lab():
    return get_scenario("lab")


FAST = SystemConfig(packets_per_link=6)


class TestFingerprint:
    @pytest.fixture(scope="class")
    def localizer(self):
        return FingerprintLocalizer(
            get_scenario("lab"),
            FAST,
            grid_spacing_m=2.0,
            rng=np.random.default_rng(0),
        )

    def test_survey_built(self, localizer):
        assert localizer.survey_size > 10
        for fp in localizer.radio_map:
            assert fp.signature_db.shape == (4,)
            assert localizer.scenario.plan.contains(fp.position)

    def test_survey_avoids_obstacles(self, localizer):
        for fp in localizer.radio_map:
            for o in localizer.scenario.plan.obstacles:
                assert not o.polygon.contains(fp.position, boundary=False)

    def test_locates_inside(self, localizer, lab):
        rng = np.random.default_rng(1)
        for site in lab.test_sites[:4]:
            p = localizer.locate(site, rng)
            assert lab.plan.boundary.contains(p)

    def test_calibrated_accuracy_beats_random(self, localizer, lab):
        rng = np.random.default_rng(2)
        errs = [
            localizer.localization_error(site, rng)
            for site in lab.test_sites
        ]
        # Dense survey should put fingerprinting at a few metres.
        assert np.mean(errs) < 4.0

    def test_validation(self, lab):
        with pytest.raises(ValueError):
            FingerprintLocalizer(lab, FAST, k=0)
        with pytest.raises(ValueError):
            FingerprintLocalizer(lab, FAST, grid_spacing_m=0)
        with pytest.raises(ValueError):
            # Grid coarser than the venue -> too few reference points.
            FingerprintLocalizer(lab, FAST, grid_spacing_m=50.0, k=5)


class TestWeightedCentroid:
    def test_estimate_in_ap_hull(self, lab):
        loc = WeightedCentroidLocalizer(lab, FAST)
        rng = np.random.default_rng(0)
        ap_x = [ap.position.x for ap in lab.aps]
        ap_y = [ap.position.y for ap in lab.aps]
        for site in lab.test_sites[:5]:
            p = loc.locate(site, rng)
            assert min(ap_x) <= p.x <= max(ap_x)
            assert min(ap_y) <= p.y <= max(ap_y)

    def test_pulls_toward_nearest_ap(self, lab):
        loc = WeightedCentroidLocalizer(lab, FAST, exponent=2.0)
        rng = np.random.default_rng(1)
        # Object right next to AP2 (11, 1).
        near_ap2 = lab.test_sites[3]  # (9.4, 1.4)
        p = loc.locate(near_ap2, rng)
        ap2 = next(ap.position for ap in lab.aps if ap.name == "AP2")
        others = [ap.position for ap in lab.aps if ap.name != "AP2"]
        assert p.distance_to(ap2) < min(p.distance_to(o) for o in others) + 3.0

    def test_exponent_validation(self, lab):
        with pytest.raises(ValueError):
            WeightedCentroidLocalizer(lab, FAST, exponent=0.0)


class TestStaticSP:
    def test_forces_static_mode(self, lab):
        loc = StaticSPLocalizer(lab, SystemConfig(packets_per_link=6))
        assert loc.system.config.use_nomadic is False
        rng = np.random.default_rng(0)
        anchors = loc.system.gather_anchors(lab.test_sites[0], rng)
        assert len(anchors) == 4
        assert not any(a.nomadic for a in anchors)

    def test_locate(self, lab):
        loc = StaticSPLocalizer(lab, SystemConfig(packets_per_link=6))
        rng = np.random.default_rng(1)
        err = loc.localization_error(lab.test_sites[0], rng)
        assert 0 <= err < 10.0
