"""Tests for the calibrated ranging + trilateration baseline."""

import numpy as np
import pytest

from repro.baselines import CSIRangingModel, TrilaterationLocalizer, trilaterate
from repro.core import SystemConfig
from repro.environment import get_scenario
from repro.geometry import Point


class TestCSIRangingModel:
    def test_recovers_synthetic_model(self):
        """Perfect log-distance data is fitted exactly."""
        n_true, a_true = 2.5, -40.0
        dists = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        pdp_db = a_true - 10 * n_true * np.log10(dists)
        pdps = 10 ** (pdp_db / 10)
        model = CSIRangingModel()
        model.calibrate(pdps, dists)
        assert model.exponent == pytest.approx(n_true, abs=1e-6)
        assert model.intercept_db == pytest.approx(a_true, abs=1e-6)
        for d in (1.5, 3.0, 10.0):
            pdp = 10 ** ((a_true - 10 * n_true * np.log10(d)) / 10)
            assert model.distance(pdp) == pytest.approx(d, rel=1e-6)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CSIRangingModel().distance(1e-6)

    def test_validation(self):
        m = CSIRangingModel()
        with pytest.raises(ValueError):
            m.calibrate(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            m.calibrate(np.array([1.0, -1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            m.calibrate(np.array([1.0, 2.0]), np.array([3.0, 3.0]))

    def test_distance_monotone_decreasing_in_pdp(self):
        model = CSIRangingModel()
        model.calibrate(
            np.array([1e-3, 1e-4, 1e-5]), np.array([1.0, 3.0, 9.0])
        )
        assert model.distance(1e-3) < model.distance(1e-5)


class TestTrilaterate:
    def test_exact_distances_exact_fix(self):
        anchors = [Point(0, 0), Point(10, 0), Point(0, 10), Point(10, 10)]
        truth = Point(3.0, 7.0)
        dists = [truth.distance_to(a) for a in anchors]
        fix = trilaterate(anchors, dists, Point(5, 5))
        assert fix.almost_equals(truth, tol=1e-5)

    def test_noisy_distances_small_error(self):
        rng = np.random.default_rng(0)
        anchors = [Point(0, 0), Point(10, 0), Point(0, 10), Point(10, 10)]
        truth = Point(6.0, 4.0)
        dists = [truth.distance_to(a) + rng.normal(0, 0.2) for a in anchors]
        fix = trilaterate(anchors, dists, Point(5, 5))
        assert fix.distance_to(truth) < 1.0

    def test_needs_three_anchors(self):
        with pytest.raises(ValueError):
            trilaterate([Point(0, 0), Point(1, 0)], [1.0, 1.0], Point(0, 0))

    def test_alignment_check(self):
        with pytest.raises(ValueError):
            trilaterate([Point(0, 0), Point(1, 0), Point(0, 1)], [1.0], Point(0, 0))

    def test_initial_at_anchor(self):
        """Degenerate start (on an anchor) must not crash the Jacobian."""
        anchors = [Point(0, 0), Point(10, 0), Point(5, 8)]
        truth = Point(4, 3)
        dists = [truth.distance_to(a) for a in anchors]
        fix = trilaterate(anchors, dists, Point(0, 0))
        assert fix.distance_to(truth) < 1e-3


class TestTrilaterationLocalizer:
    @pytest.fixture(scope="class")
    def localizer(self):
        scen = get_scenario("lab")
        return TrilaterationLocalizer(
            scen,
            SystemConfig(packets_per_link=10),
            rng=np.random.default_rng(0),
        )

    def test_calibration_happened(self, localizer):
        assert localizer.ranging.exponent > 0.5

    def test_locates_inside_venue(self, localizer):
        scen = localizer.scenario
        rng = np.random.default_rng(1)
        for site in scen.test_sites[:4]:
            p = localizer.locate(site, rng)
            assert scen.plan.contains(p)

    def test_meter_scale_error(self, localizer):
        scen = localizer.scenario
        rng = np.random.default_rng(2)
        errs = [
            localizer.localization_error(site, rng)
            for site in scen.test_sites[:6]
        ]
        assert np.mean(errs) < 6.0  # sane, not necessarily good

    def test_custom_calibration_points(self):
        scen = get_scenario("lab")
        points = [Point(2, 2), Point(6, 4), Point(10, 6), Point(4, 7)]
        loc = TrilaterationLocalizer(
            scen,
            SystemConfig(packets_per_link=5),
            calibration_points=points,
            rng=np.random.default_rng(3),
        )
        assert loc.ranging.exponent > 0.5
