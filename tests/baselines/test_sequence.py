"""Tests for sequence-based localization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequenceLocalizer, kendall_tau, rank_sequence
from repro.core import SystemConfig
from repro.environment import get_scenario


class TestRankSequence:
    def test_ascending(self):
        assert rank_sequence(np.array([3.0, 1.0, 2.0])).tolist() == [2, 0, 1]

    def test_descending(self):
        out = rank_sequence(np.array([3.0, 1.0, 2.0]), descending=True)
        assert out.tolist() == [0, 2, 1]

    def test_ties_stable(self):
        out = rank_sequence(np.array([1.0, 1.0, 0.5]))
        assert out.tolist() == [1, 2, 0]

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=10))
    @settings(max_examples=60)
    def test_permutation_property(self, values):
        ranks = rank_sequence(np.array(values))
        assert sorted(ranks.tolist()) == list(range(len(values)))


class TestKendallTau:
    def test_identical(self):
        assert kendall_tau(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_reversed(self):
        assert kendall_tau(np.array([0, 1, 2]), np.array([2, 1, 0])) == -1.0

    def test_partial(self):
        # One discordant pair of three.
        tau = kendall_tau(np.array([0, 1, 2]), np.array([0, 2, 1]))
        assert tau == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            kendall_tau(np.array([0, 1]), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            kendall_tau(np.array([0]), np.array([0]))

    @given(st.permutations(list(range(5))))
    @settings(max_examples=40)
    def test_symmetry(self, perm):
        a = np.arange(5)
        b = np.array(perm)
        assert kendall_tau(a, b) == pytest.approx(kendall_tau(b, a))

    @given(st.permutations(list(range(5))))
    @settings(max_examples=40)
    def test_range(self, perm):
        tau = kendall_tau(np.arange(5), np.array(perm))
        assert -1.0 <= tau <= 1.0


class TestSequenceLocalizer:
    @pytest.fixture(scope="class")
    def localizer(self):
        return SequenceLocalizer(
            get_scenario("lab"),
            SystemConfig(packets_per_link=10),
            grid_spacing_m=0.5,
        )

    def test_face_table_built(self, localizer):
        # 4 anchors -> at most 24 orderings; the venue realizes several.
        assert 4 <= localizer.num_faces <= 24
        for face in localizer.faces:
            assert localizer.scenario.plan.contains(face.centroid)
            assert sorted(face.sequence) == [0, 1, 2, 3]

    def test_spacing_validation(self):
        with pytest.raises(ValueError):
            SequenceLocalizer(get_scenario("lab"), grid_spacing_m=0)

    def test_locates_inside(self, localizer):
        scen = localizer.scenario
        rng = np.random.default_rng(0)
        for site in scen.test_sites[:5]:
            p = localizer.locate(site, rng)
            assert scen.plan.contains(p)

    def test_meter_scale_accuracy(self, localizer):
        scen = localizer.scenario
        rng = np.random.default_rng(1)
        errs = [
            localizer.localization_error(site, rng)
            for site in scen.test_sites
        ]
        assert np.mean(errs) < 4.0

    def test_perfect_ranks_hit_right_face(self, localizer):
        """Bypass radio: feed the true distance ordering directly."""
        from repro.baselines.sequence import rank_sequence as rs

        scen = localizer.scenario
        anchors = [ap.position for ap in scen.aps]
        obj = scen.test_sites[0]
        true_seq = rs(np.array([obj.distance_to(a) for a in anchors]))
        face = max(
            localizer.faces,
            key=lambda f: kendall_tau(true_seq, np.array(f.sequence)),
        )
        # The matched face's centroid is in the object's neighbourhood.
        assert face.centroid.distance_to(obj) < 6.0
