"""Tests for antenna patterns."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import OMNI, AntennaPattern
from repro.geometry import Point


class TestAntennaPattern:
    def test_omni_is_flat(self):
        assert OMNI.is_omni
        for az in (-180, -90, 0, 45, 180):
            assert OMNI.gain_db(az) == 0.0

    def test_boresight_and_back(self):
        p = AntennaPattern(boresight_deg=90.0, front_gain_db=6.0, back_loss_db=12.0)
        assert p.gain_db(90.0) == pytest.approx(6.0)
        assert p.gain_db(-90.0) == pytest.approx(-12.0)
        # Broadside sits midway.
        assert p.gain_db(0.0) == pytest.approx((6.0 - 12.0) / 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AntennaPattern(front_gain_db=-1.0)
        with pytest.raises(ValueError):
            AntennaPattern(back_loss_db=-1.0)

    @given(st.floats(min_value=-720, max_value=720))
    @settings(max_examples=60)
    def test_gain_bounded(self, az):
        p = AntennaPattern(boresight_deg=30.0, front_gain_db=5.0, back_loss_db=10.0)
        g = p.gain_db(az)
        assert -10.0 - 1e-9 <= g <= 5.0 + 1e-9

    @given(st.floats(min_value=-360, max_value=360))
    @settings(max_examples=40)
    def test_periodic(self, az):
        p = AntennaPattern(boresight_deg=10.0, front_gain_db=4.0, back_loss_db=8.0)
        assert p.gain_db(az) == pytest.approx(p.gain_db(az + 360.0), abs=1e-9)

    def test_gain_towards(self):
        p = AntennaPattern(boresight_deg=0.0, front_gain_db=6.0, back_loss_db=12.0)
        at = Point(0, 0)
        assert p.gain_towards_db(at, Point(5, 0)) == pytest.approx(6.0)
        assert p.gain_towards_db(at, Point(-5, 0)) == pytest.approx(-12.0)
        # Degenerate: target on top of the antenna.
        assert p.gain_towards_db(at, Point(0, 0)) == 6.0


class TestSystemIntegration:
    def test_antenna_scales_pdp(self):
        from repro.core import NomLocSystem, SystemConfig
        from repro.environment import get_scenario

        lab = get_scenario("lab")
        ap2 = next(ap for ap in lab.aps if ap.name == "AP2")
        site = lab.test_sites[0]
        az = math.degrees(
            math.atan2(site.y - ap2.position.y, site.x - ap2.position.x)
        )
        boosted = AntennaPattern(boresight_deg=az, front_gain_db=6.0)
        base = NomLocSystem(lab, SystemConfig(packets_per_link=5))
        directional = NomLocSystem(
            lab, SystemConfig(packets_per_link=5), antennas={"AP2": boosted}
        )
        p_base = {
            a.name: a.pdp
            for a in base.gather_anchors(site, np.random.default_rng(1))
        }
        p_dir = {
            a.name: a.pdp
            for a in directional.gather_anchors(site, np.random.default_rng(1))
        }
        assert p_dir["AP2"] == pytest.approx(10**0.6 * p_base["AP2"])
        assert p_dir["AP3"] == pytest.approx(p_base["AP3"])

    def test_unknown_ap_rejected(self):
        from repro.core import NomLocSystem
        from repro.environment import get_scenario

        with pytest.raises(ValueError):
            NomLocSystem(get_scenario("lab"), antennas={"AP9": OMNI})
