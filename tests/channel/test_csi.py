"""Tests for CSI synthesis, CIR processing, fading, and noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    INTEL5300_SUBCARRIERS,
    CSIMeasurement,
    CSISynthesizer,
    FadingModel,
    NoiseModel,
    OFDMConfig,
    PathComponent,
    PathKind,
    csi_to_cir,
    delay_profile,
    rician_gain,
    thermal_noise_dbm,
)


def component(
    length_m=5.0, excess_db=0.0, kind=PathKind.DIRECT, blocked=False, bounces=0
):
    return PathComponent(
        kind=kind,
        length_m=length_m,
        delay_s=length_m / 299_792_458.0,
        excess_loss_db=excess_db,
        bounces=bounces,
        blocked=blocked,
    )


class TestOFDMConfig:
    def test_defaults_match_80211n_20mhz(self):
        cfg = OFDMConfig()
        assert cfg.n_fft == 64
        assert cfg.subcarrier_spacing_hz == pytest.approx(312_500.0)
        assert cfg.tap_resolution_s == pytest.approx(50e-9)
        assert len(cfg.active_subcarriers) == 56
        assert 0 not in cfg.active_subcarriers

    def test_subcarrier_bounds_validated(self):
        with pytest.raises(ValueError):
            OFDMConfig(active_subcarriers=(40,))
        with pytest.raises(ValueError):
            OFDMConfig(n_fft=0)

    def test_frequencies_symmetric(self):
        cfg = OFDMConfig()
        freqs = cfg.subcarrier_frequencies_hz()
        assert freqs.min() == pytest.approx(-28 * 312_500.0)
        assert freqs.max() == pytest.approx(28 * 312_500.0)


class TestCSISynthesis:
    def test_single_los_path_flat_magnitude(self):
        synth = CSISynthesizer(noise=None)
        rng = np.random.default_rng(0)
        m = synth.synthesize([component(5.0)], rng, with_fading=False)
        mags = np.abs(m.csi)
        assert np.allclose(mags, mags[0], rtol=1e-9)

    def test_magnitude_matches_path_loss(self):
        synth = CSISynthesizer(noise=None)
        rng = np.random.default_rng(0)
        comp = component(5.0)
        m = synth.synthesize([comp], rng, with_fading=False)
        expected = synth.path_amplitude(comp)
        assert np.abs(m.csi[0]) == pytest.approx(expected, rel=1e-9)

    def test_two_paths_create_frequency_selectivity(self):
        """Multipath must make |H(f)| vary across subcarriers."""
        synth = CSISynthesizer(noise=None)
        rng = np.random.default_rng(0)
        paths = [
            component(5.0),
            component(20.0, excess_db=3.0, kind=PathKind.REFLECTED, bounces=1),
        ]
        m = synth.synthesize(paths, rng, with_fading=False)
        mags = np.abs(m.csi)
        assert mags.std() / mags.mean() > 0.05

    def test_empty_paths_rejected(self):
        synth = CSISynthesizer()
        with pytest.raises(ValueError):
            synth.synthesize([], np.random.default_rng(0))

    def test_batch_count(self):
        synth = CSISynthesizer()
        rng = np.random.default_rng(0)
        batch = synth.synthesize_batch([component()], 7, rng)
        assert len(batch) == 7
        with pytest.raises(ValueError):
            synth.synthesize_batch([component()], -1, rng)

    def test_determinism_with_seed(self):
        synth = CSISynthesizer()
        a = synth.synthesize([component()], np.random.default_rng(42))
        b = synth.synthesize([component()], np.random.default_rng(42))
        np.testing.assert_array_equal(a.csi, b.csi)

    def test_noise_floor_dominates_far_link(self):
        """A 1 km 'link' should be buried in noise."""
        synth = CSISynthesizer()
        rng = np.random.default_rng(1)
        far = synth.synthesize([component(1000.0, excess_db=60.0)], rng)
        noise_mw = NoiseModel().noise_power_mw()
        assert far.total_power_mw() < 100 * noise_mw


class TestCSIMeasurement:
    def test_length_validation(self):
        cfg = OFDMConfig()
        with pytest.raises(ValueError):
            CSIMeasurement(np.zeros(3, dtype=complex), cfg)

    def test_total_power(self):
        cfg = OFDMConfig(active_subcarriers=(-1, 1))
        m = CSIMeasurement(np.array([3 + 4j, 0 + 0j]), cfg)
        assert m.total_power_mw() == pytest.approx(25.0)

    def test_intel5300_subsample(self):
        synth = CSISynthesizer(noise=None)
        rng = np.random.default_rng(0)
        m = synth.synthesize([component()], rng, with_fading=False)
        sub = m.subsample_intel5300()
        assert len(sub.csi) == 30
        assert sub.config.active_subcarriers == INTEL5300_SUBCARRIERS
        # Values must be picked, not recomputed.
        full_idx = m.config.active_subcarriers.index(-28)
        assert sub.csi[0] == m.csi[full_idx]

    def test_intel5300_subsample_requires_carriers(self):
        cfg = OFDMConfig(active_subcarriers=(-1, 1))
        m = CSIMeasurement(np.ones(2, dtype=complex), cfg)
        with pytest.raises(ValueError):
            m.subsample_intel5300()


class TestRSSIModel:
    def test_rssi_reported_by_default(self):
        synth = CSISynthesizer()
        m = synth.synthesize([component()], np.random.default_rng(0))
        assert m.rssi_dbm is not None
        assert m.rssi_mw() > 0

    def test_rssi_quantized(self):
        synth = CSISynthesizer(rssi_jitter_db=0.0, rssi_quantization_db=1.0)
        m = synth.synthesize([component()], np.random.default_rng(0))
        assert m.rssi_dbm == pytest.approx(round(m.rssi_dbm))

    def test_rssi_jitter_makes_it_unstable(self):
        """Coarse RSSI fluctuates packet-to-packet far more than CSI power
        — the paper's 'temporal stability' argument for CSI."""
        synth = CSISynthesizer(rssi_jitter_db=2.0)
        rng = np.random.default_rng(1)
        batch = synth.synthesize_batch([component()], 200, rng)
        rssi_db = np.array([m.rssi_dbm for m in batch])
        csi_db = np.array(
            [10 * np.log10(m.total_power_mw()) for m in batch]
        )
        assert np.std(rssi_db) > np.std(csi_db)

    def test_rssi_none_falls_back_to_power(self):
        cfg = OFDMConfig(active_subcarriers=(-1, 1))
        m = CSIMeasurement(np.array([3 + 4j, 0 + 0j]), cfg)
        assert m.rssi_dbm is None
        assert m.rssi_mw() == pytest.approx(25.0)

    def test_rssi_tracks_true_power(self):
        synth = CSISynthesizer(rssi_jitter_db=0.5)
        rng = np.random.default_rng(2)
        near = np.mean(
            [
                synth.synthesize([component(2.0)], rng).rssi_mw()
                for _ in range(40)
            ]
        )
        far = np.mean(
            [
                synth.synthesize([component(20.0)], rng).rssi_mw()
                for _ in range(40)
            ]
        )
        assert near > far


class TestCIR:
    def test_flat_channel_single_tap(self):
        """A zero-delay unit channel concentrates in tap 0."""
        cfg = OFDMConfig()
        m = CSIMeasurement(np.ones(56, dtype=complex), cfg)
        taps = csi_to_cir(m)
        profile = delay_profile(m)
        assert np.abs(taps[0]) == pytest.approx(1.0, rel=1e-9)
        assert profile.max_power() == pytest.approx(profile.first_tap_power())

    def test_delayed_path_lands_in_right_tap(self):
        """A path delayed by k tap-widths peaks at tap k."""
        cfg = OFDMConfig()
        synth = CSISynthesizer(noise=None, ofdm=cfg)
        rng = np.random.default_rng(0)
        k = 4
        delay = k * cfg.tap_resolution_s
        comp = PathComponent(
            kind=PathKind.REFLECTED,
            length_m=delay * 299_792_458.0,
            delay_s=delay,
            excess_loss_db=0.0,
            bounces=1,
        )
        m = synth.synthesize([comp], rng, with_fading=False)
        profile = delay_profile(m)
        assert int(np.argmax(profile.powers)) == k

    def test_profile_truncation(self):
        cfg = OFDMConfig()
        m = CSIMeasurement(np.ones(56, dtype=complex), cfg)
        profile = delay_profile(m)
        short = profile.truncated(1.5e-6)
        assert short.delays_s.max() <= 1.5e-6 + 1e-12
        assert len(short.delays_s) == 31  # taps 0..30 at 50 ns

    def test_profile_validation(self):
        from repro.channel import DelayProfile

        with pytest.raises(ValueError):
            DelayProfile(np.zeros(3), np.zeros(4))

    def test_parseval_power_preserved(self):
        """IFFT preserves total power (up to the occupancy rescale)."""
        cfg = OFDMConfig()
        rng = np.random.default_rng(3)
        csi = rng.standard_normal(56) + 1j * rng.standard_normal(56)
        m = CSIMeasurement(csi, cfg)
        taps = csi_to_cir(m)
        scale = cfg.n_fft / 56
        freq_power = np.sum(np.abs(csi) ** 2) / cfg.n_fft * scale**2
        time_power = np.sum(np.abs(taps) ** 2)
        assert time_power == pytest.approx(freq_power, rel=1e-9)


class TestFading:
    def test_rician_unit_mean_power(self):
        rng = np.random.default_rng(0)
        for k in (0.0, 1.0, 10.0):
            gains = np.array([rician_gain(k, rng) for _ in range(20000)])
            assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, abs=0.05)

    def test_high_k_less_variance(self):
        rng = np.random.default_rng(0)
        low = np.abs([rician_gain(0.1, rng) for _ in range(5000)])
        rng = np.random.default_rng(0)
        high = np.abs([rician_gain(50.0, rng) for _ in range(5000)])
        assert np.std(high) < np.std(low)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            rician_gain(-1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            FadingModel(k_direct_los=-1.0)

    def test_k_selection(self):
        fm = FadingModel()
        assert fm.k_for(component(blocked=False)) == fm.k_direct_los
        assert fm.k_for(component(blocked=True)) == fm.k_direct_nlos
        assert fm.k_for(component(kind=PathKind.REFLECTED, bounces=1)) == fm.k_reflected
        assert fm.k_for(component(kind=PathKind.SCATTERED, bounces=1)) == fm.k_scattered


class TestNoise:
    def test_thermal_noise_reference(self):
        # -174 + 73 + 6 = -95 dBm for 20 MHz, NF 6 dB.
        assert thermal_noise_dbm(20e6, 6.0) == pytest.approx(-95.0, abs=0.1)
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)

    def test_sample_power_budget(self):
        nm = NoiseModel()
        rng = np.random.default_rng(0)
        samples = np.concatenate(
            [nm.sample_subcarrier_noise(56, rng) for _ in range(2000)]
        )
        measured = np.mean(np.abs(samples) ** 2) * 56
        assert measured == pytest.approx(nm.noise_power_mw(), rel=0.1)

    def test_needs_positive_subcarriers(self):
        with pytest.raises(ValueError):
            NoiseModel().sample_subcarrier_noise(0, np.random.default_rng(0))

    @given(st.integers(min_value=1, max_value=128))
    @settings(max_examples=20)
    def test_output_length(self, n):
        out = NoiseModel().sample_subcarrier_noise(n, np.random.default_rng(0))
        assert out.shape == (n,)
