"""Vectorized ``synthesize_batch`` vs the scalar reference path.

The fast path's contract is *bit-exactness*: same RNG draw order, same
floats, for every synthesizer configuration — fading on/off, noise
on/off/bursty, RSSI jitter and quantization on/off.
"""

import numpy as np
import pytest

from repro.channel import (
    SPEED_OF_LIGHT,
    CSISynthesizer,
    NoiseModel,
    PathComponent,
    PathKind,
)
from repro.channel.csi import _intel5300_subsampling


def _paths(count: int = 4, blocked_direct: bool = False):
    kinds = [PathKind.DIRECT, PathKind.REFLECTED, PathKind.SCATTERED]
    comps = []
    for i in range(count):
        kind = kinds[min(i, 2)]
        length = 6.0 + 2.5 * i
        comps.append(
            PathComponent(
                kind,
                length,
                length / SPEED_OF_LIGHT,
                3.0 * i,
                bounces=0 if kind is PathKind.DIRECT else 1,
                blocked=blocked_direct and kind is PathKind.DIRECT,
            )
        )
    return tuple(comps)


SYNTHESIZERS = {
    "default": CSISynthesizer(),
    "no-noise": CSISynthesizer(noise=None),
    "no-jitter": CSISynthesizer(rssi_jitter_db=0.0),
    "no-quantization": CSISynthesizer(rssi_quantization_db=0.0),
    "raw-rssi": CSISynthesizer(rssi_jitter_db=0.0, rssi_quantization_db=0.0),
    "bursty": CSISynthesizer(
        noise=NoiseModel(burst_probability=0.5, burst_power_dbm=-60.0)
    ),
}


class TestSynthesizeBatchBitExactness:
    @pytest.mark.parametrize("name", sorted(SYNTHESIZERS))
    @pytest.mark.parametrize("with_fading", [True, False])
    def test_matches_scalar_reference(self, name, with_fading):
        synth = SYNTHESIZERS[name]
        paths = _paths()
        rng_scalar = np.random.default_rng(1234)
        rng_vector = np.random.default_rng(1234)
        scalar = synth.synthesize_batch_scalar(
            paths, 17, rng_scalar, with_fading=with_fading
        )
        vector = synth.synthesize_batch(
            paths, 17, rng_vector, with_fading=with_fading
        )
        assert len(scalar) == len(vector) == 17
        for s, v in zip(scalar, vector):
            assert np.array_equal(s.csi, v.csi)
            assert s.rssi_dbm == v.rssi_dbm
            assert s.config == v.config
        # Both paths must also leave the RNG bitstream at the same point.
        assert rng_scalar.standard_normal() == rng_vector.standard_normal()

    def test_blocked_direct_path(self):
        synth = CSISynthesizer()
        paths = _paths(blocked_direct=True)
        scalar = synth.synthesize_batch_scalar(
            paths, 9, np.random.default_rng(7)
        )
        vector = synth.synthesize_batch(paths, 9, np.random.default_rng(7))
        for s, v in zip(scalar, vector):
            assert np.array_equal(s.csi, v.csi)
            assert s.rssi_dbm == v.rssi_dbm

    def test_single_path_single_packet(self):
        synth = CSISynthesizer()
        paths = _paths(count=1)
        scalar = synth.synthesize(paths, np.random.default_rng(3))
        [vector] = synth.synthesize_batch(paths, 1, np.random.default_rng(3))
        assert np.array_equal(scalar.csi, vector.csi)
        assert scalar.rssi_dbm == vector.rssi_dbm


class TestSynthesizeBatchEdges:
    def test_zero_packets(self):
        assert (
            CSISynthesizer().synthesize_batch(
                _paths(), 0, np.random.default_rng(0)
            )
            == []
        )

    def test_negative_packets_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CSISynthesizer().synthesize_batch(
                _paths(), -1, np.random.default_rng(0)
            )

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError, match="path component"):
            CSISynthesizer().synthesize_batch(
                (), 4, np.random.default_rng(0)
            )


class TestIntelSubsamplingCache:
    def test_repeated_calls_reuse_precomputed_picks(self):
        synth = CSISynthesizer()
        [m] = synth.synthesize_batch(_paths(), 1, np.random.default_rng(5))
        first = _intel5300_subsampling(m.config)
        second = _intel5300_subsampling(m.config)
        assert first is second  # lru_cache hit, no per-call dict rebuild

    def test_subsample_values_match_index_lookup(self):
        synth = CSISynthesizer()
        [m] = synth.synthesize_batch(_paths(), 1, np.random.default_rng(5))
        sub = m.subsample_intel5300()
        index_of = {sc: i for i, sc in enumerate(m.config.active_subcarriers)}
        for value, sc in zip(sub.csi, sub.config.active_subcarriers):
            assert value == m.csi[index_of[sc]]
