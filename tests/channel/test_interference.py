"""Tests for bursty co-channel interference and the robust PDP estimator."""

import numpy as np
import pytest

from repro.channel import (
    CSISynthesizer,
    LinkSimulator,
    NoiseModel,
)
from repro.core import estimate_pdp, estimate_pdp_median
from repro.environment import FloorPlan
from repro.geometry import Point, Polygon


def bursty_sim(prob, burst_dbm=-55.0):
    plan = FloorPlan("room", Polygon.rectangle(0, 0, 20, 20))
    synth = CSISynthesizer(
        noise=NoiseModel(burst_probability=prob, burst_power_dbm=burst_dbm)
    )
    return LinkSimulator(plan, synth)


class TestInterferenceModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(burst_probability=1.5)
        with pytest.raises(ValueError):
            NoiseModel(burst_probability=-0.1)

    def test_zero_probability_is_thermal_only(self):
        nm_clean = NoiseModel()
        nm_bursty = NoiseModel(burst_probability=0.0, burst_power_dbm=-30.0)
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        a = nm_clean.sample_subcarrier_noise(56, rng1)
        b = nm_bursty.sample_subcarrier_noise(56, rng2)
        np.testing.assert_array_equal(a, b)

    def test_bursts_raise_noise_sometimes(self):
        nm = NoiseModel(burst_probability=0.3, burst_power_dbm=-55.0)
        rng = np.random.default_rng(1)
        powers = [
            float(np.sum(np.abs(nm.sample_subcarrier_noise(56, rng)) ** 2))
            for _ in range(400)
        ]
        powers = np.array(powers)
        thermal = nm.noise_power_mw()
        hit_fraction = float(np.mean(powers > 5 * thermal))
        assert 0.15 < hit_fraction < 0.45  # roughly the burst probability

    def test_ifft_processing_gain_rejects_moderate_bursts(self):
        """The IFFT concentrates the coherent path into one tap while
        interference spreads across all 64, so a burst at the same total
        power as the signal barely moves the max-tap PDP — inherent
        interference rejection that scalar RSS does not have."""
        tx, rx = Point(1, 1), Point(19, 19)
        clean = estimate_pdp(
            bursty_sim(0.0).measure_batch(tx, rx, 80, np.random.default_rng(2))
        )
        # -30 dBm burst == the link's total received power.
        moderate = estimate_pdp(
            bursty_sim(1.0, burst_dbm=-30.0).measure_batch(
                tx, rx, 80, np.random.default_rng(2)
            )
        )
        assert moderate == pytest.approx(clean, rel=0.3)

    def test_overwhelming_bursts_inflate_mean_pdp(self):
        """A colliding nearby transmitter (-10 dBm bursts) does corrupt
        the mean estimator."""
        tx, rx = Point(1, 1), Point(19, 19)
        rng = np.random.default_rng(2)
        pdp_clean = estimate_pdp(
            bursty_sim(0.0).measure_batch(tx, rx, 80, rng)
        )
        pdp_bursty = estimate_pdp(
            bursty_sim(0.3, burst_dbm=-10.0).measure_batch(tx, rx, 80, rng)
        )
        assert pdp_bursty > pdp_clean * 1.5


class TestRobustEstimator:
    def test_median_matches_mean_on_clean_links(self):
        sim = bursty_sim(0.0)
        rng = np.random.default_rng(3)
        batch = sim.measure_batch(Point(2, 2), Point(10, 10), 60, rng)
        mean_est = estimate_pdp(batch)
        median_est = estimate_pdp_median(batch)
        assert median_est == pytest.approx(mean_est, rel=0.25)

    def test_median_resists_overwhelming_bursts(self):
        """Under 30% strong-collision bursts the median estimator stays
        near the clean value while the mean inflates."""
        tx, rx = Point(1, 1), Point(19, 19)
        rng = np.random.default_rng(4)
        clean_value = estimate_pdp_median(
            bursty_sim(0.0).measure_batch(tx, rx, 80, rng)
        )
        bursty_batch = bursty_sim(0.3, burst_dbm=-10.0).measure_batch(
            tx, rx, 80, rng
        )
        mean_err = abs(estimate_pdp(bursty_batch) - clean_value) / clean_value
        median_err = (
            abs(estimate_pdp_median(bursty_batch) - clean_value) / clean_value
        )
        assert median_err < mean_err

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            estimate_pdp_median([])

    def test_registered_as_metric(self):
        from repro.core import PROXIMITY_METRICS, SystemConfig

        assert "pdp_median" in PROXIMITY_METRICS
        cfg = SystemConfig(proximity_metric="pdp_median")
        assert cfg.resolve_metric() is PROXIMITY_METRICS["pdp_median"]
