"""Tests for the cached link-level simulator."""

import numpy as np
import pytest

from repro.channel import CSISynthesizer, LinkSimulator, METAL, PropagationModel
from repro.environment import FloorPlan, Obstacle
from repro.geometry import Point, Polygon


@pytest.fixture
def sim():
    plan = FloorPlan(
        "room",
        Polygon.rectangle(0, 0, 10, 10),
        (),
        (Obstacle(Polygon.rectangle(4, 4, 6, 6), METAL, "rack"),),
    )
    return LinkSimulator(plan)


class TestLinkSimulator:
    def test_trace_cached(self, sim):
        a, b = Point(1, 1), Point(9, 9)
        p1 = sim.paths(a, b)
        p2 = sim.paths(a, b)
        assert p1 is p2
        sim.clear_cache()
        assert sim.paths(a, b) is not p1

    def test_is_los(self, sim):
        assert sim.is_los(Point(1, 1), Point(9, 1))
        assert not sim.is_los(Point(1, 5), Point(9, 5))  # through the rack

    def test_measure_shapes(self, sim):
        rng = np.random.default_rng(0)
        m = sim.measure(Point(1, 1), Point(9, 1), rng)
        assert m.csi.shape == (56,)
        batch = sim.measure_batch(Point(1, 1), Point(9, 1), 5, rng)
        assert len(batch) == 5

    def test_closer_link_stronger(self, sim):
        rng = np.random.default_rng(0)
        near = np.mean(
            [
                sim.measure(Point(1, 1), Point(3, 1), rng).total_power_mw()
                for _ in range(50)
            ]
        )
        far = np.mean(
            [
                sim.measure(Point(1, 1), Point(9, 1), rng).total_power_mw()
                for _ in range(50)
            ]
        )
        assert near > far

    def test_nlos_weaker_than_los_at_same_distance(self, sim):
        rng = np.random.default_rng(0)
        # Both links are 8 m; one passes through the metal rack.
        los = np.mean(
            [
                sim.measure(Point(1, 1), Point(9, 1), rng).total_power_mw()
                for _ in range(50)
            ]
        )
        nlos = np.mean(
            [
                sim.measure(Point(1, 5), Point(9, 5), rng).total_power_mw()
                for _ in range(50)
            ]
        )
        assert nlos < los

    def test_delay_profile_shortcut(self, sim):
        rng = np.random.default_rng(0)
        profile = sim.measure_delay_profile(Point(1, 1), Point(9, 1), rng)
        assert profile.delays_s[0] == 0.0
        assert profile.max_power() > 0

    def test_custom_synthesizer(self):
        plan = FloorPlan("r", Polygon.rectangle(0, 0, 5, 5))
        synth = CSISynthesizer(
            tx_power_dbm=20.0,
            propagation=PropagationModel(path_loss_exponent=3.0),
            noise=None,
        )
        sim = LinkSimulator(plan, synth)
        rng = np.random.default_rng(0)
        m = sim.measure(Point(1, 1), Point(4, 4), rng, with_fading=False)
        assert m.total_power_mw() > 0
