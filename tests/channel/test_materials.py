"""Tests for RF material presets."""

import pytest

from repro.channel import CONCRETE, DRYWALL, GLASS, MATERIALS, METAL, Material


class TestMaterial:
    def test_registry_complete(self):
        assert set(MATERIALS) == {
            "concrete",
            "brick",
            "drywall",
            "glass",
            "wood",
            "metal",
            "human_body",
        }
        for name, mat in MATERIALS.items():
            assert mat.name == name

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", -1.0, 2.0, 3.0)
        with pytest.raises(ValueError):
            Material("bad", 1.0, -2.0, 3.0)
        with pytest.raises(ValueError):
            Material("bad", 1.0, 2.0, -3.0)

    def test_orderings_that_experiments_rely_on(self):
        # Metal blocks hardest and reflects best.
        assert METAL.penetration_loss_db > CONCRETE.penetration_loss_db
        assert METAL.reflection_loss_db < DRYWALL.reflection_loss_db
        # Light partitions attenuate less than structural concrete.
        assert DRYWALL.penetration_loss_db < CONCRETE.penetration_loss_db
        assert GLASS.penetration_loss_db < CONCRETE.penetration_loss_db

    def test_immutable(self):
        with pytest.raises(AttributeError):
            CONCRETE.penetration_loss_db = 0.0
