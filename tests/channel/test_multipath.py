"""Tests for the image-method multipath tracer."""

import pytest

from repro.channel import (
    CONCRETE,
    METAL,
    PathKind,
    SPEED_OF_LIGHT,
    TraceConfig,
    trace_paths,
)
from repro.environment import FloorPlan, Obstacle, Wall
from repro.geometry import Point, Polygon, Segment


@pytest.fixture
def empty_room():
    """A bare 10 x 10 concrete room."""
    return FloorPlan("room", Polygon.rectangle(0, 0, 10, 10))


@pytest.fixture
def room_with_wall():
    """Room split by an interior wall with a gap at the top."""
    wall = Wall(Segment(Point(5, 0), Point(5, 7)), CONCRETE)
    return FloorPlan("split", Polygon.rectangle(0, 0, 10, 10), (wall,))


@pytest.fixture
def room_with_rack(empty_room):
    rack = Obstacle(Polygon.rectangle(4, 4, 6, 6), METAL, "rack")
    return FloorPlan("racked", Polygon.rectangle(0, 0, 10, 10), (), (rack,))


class TestDirectPath:
    def test_los_direct(self, empty_room):
        paths = trace_paths(empty_room, Point(1, 5), Point(9, 5))
        direct = [p for p in paths if p.kind is PathKind.DIRECT]
        assert len(direct) == 1
        d = direct[0]
        assert d.length_m == pytest.approx(8.0)
        assert d.delay_s == pytest.approx(8.0 / SPEED_OF_LIGHT)
        assert d.excess_loss_db == 0.0
        assert not d.blocked
        assert d.bounces == 0

    def test_wall_blocks_direct(self, room_with_wall):
        paths = trace_paths(room_with_wall, Point(1, 3), Point(9, 3))
        direct = next(p for p in paths if p.kind is PathKind.DIRECT)
        assert direct.blocked
        assert direct.excess_loss_db == pytest.approx(
            CONCRETE.penetration_loss_db
        )

    def test_gap_above_wall_is_clear(self, room_with_wall):
        paths = trace_paths(room_with_wall, Point(1, 9), Point(9, 9))
        direct = next(p for p in paths if p.kind is PathKind.DIRECT)
        assert not direct.blocked

    def test_obstacle_blocks_direct(self, room_with_rack):
        paths = trace_paths(room_with_rack, Point(1, 5), Point(9, 5))
        direct = next(p for p in paths if p.kind is PathKind.DIRECT)
        assert direct.blocked
        assert direct.excess_loss_db == pytest.approx(METAL.penetration_loss_db)

    def test_direct_always_first(self, room_with_rack):
        """Sorted by delay: the direct path has the shortest length."""
        paths = trace_paths(room_with_rack, Point(1, 1), Point(9, 9))
        assert paths[0].kind is PathKind.DIRECT


class TestReflections:
    def test_first_order_count_in_empty_room(self, empty_room):
        cfg = TraceConfig(max_reflection_order=1, include_scatter=False)
        paths = trace_paths(empty_room, Point(3, 5), Point(7, 5), cfg)
        reflected = [p for p in paths if p.kind is PathKind.REFLECTED]
        # All four boundary walls see both endpoints => four single bounces.
        assert len(reflected) == 4
        assert all(r.bounces == 1 for r in reflected)

    def test_reflection_longer_than_direct(self, empty_room):
        cfg = TraceConfig(max_reflection_order=1, include_scatter=False)
        paths = trace_paths(empty_room, Point(2, 5), Point(8, 5), cfg)
        direct = next(p for p in paths if p.kind is PathKind.DIRECT)
        for r in (p for p in paths if p.kind is PathKind.REFLECTED):
            assert r.length_m > direct.length_m

    def test_known_reflection_geometry(self, empty_room):
        """Bounce off the y=0 wall between mirrored endpoints."""
        cfg = TraceConfig(max_reflection_order=1, include_scatter=False)
        paths = trace_paths(empty_room, Point(2, 3), Point(8, 3), cfg)
        floor_bounce = min(
            (p for p in paths if p.kind is PathKind.REFLECTED),
            key=lambda p: abs(p.length_m - ((6**2 + 6**2) ** 0.5)),
        )
        # Image of (2,3) in y=0 is (2,-3); distance to (8,3) = sqrt(36+36).
        assert floor_bounce.length_m == pytest.approx((72) ** 0.5, abs=1e-6)

    def test_second_order_exist_and_are_longer(self, empty_room):
        cfg1 = TraceConfig(max_reflection_order=1, include_scatter=False)
        cfg2 = TraceConfig(max_reflection_order=2, include_scatter=False)
        p1 = trace_paths(empty_room, Point(2, 2), Point(8, 8), cfg1)
        p2 = trace_paths(empty_room, Point(2, 2), Point(8, 8), cfg2)
        doubles = [p for p in p2 if p.bounces == 2]
        assert len(p2) > len(p1)
        assert doubles
        direct = next(p for p in p2 if p.kind is PathKind.DIRECT)
        assert all(d.length_m > direct.length_m for d in doubles)

    def test_reflection_order_zero(self, empty_room):
        cfg = TraceConfig(max_reflection_order=0, include_scatter=False)
        paths = trace_paths(empty_room, Point(2, 2), Point(8, 8), cfg)
        assert len(paths) == 1
        assert paths[0].kind is PathKind.DIRECT

    def test_metal_reflects_stronger_than_drywall(self):
        from repro.channel import DRYWALL

        for material, expect in ((METAL, METAL), (DRYWALL, DRYWALL)):
            plan = FloorPlan(
                "one-wall",
                Polygon.rectangle(0, 0, 20, 20),
                (Wall(Segment(Point(0, 10), Point(20, 10)), material),),
            )
            cfg = TraceConfig(max_reflection_order=1, include_scatter=False)
            paths = trace_paths(plan, Point(5, 5), Point(15, 5), cfg)
            losses = {
                round(p.excess_loss_db, 6)
                for p in paths
                if p.kind is PathKind.REFLECTED
            }
            # The interior wall's bounce shows up with its own loss.
            assert expect.reflection_loss_db in losses


class TestScatter:
    def test_scatter_component_present(self, room_with_rack):
        cfg = TraceConfig(max_reflection_order=0, include_scatter=True)
        paths = trace_paths(room_with_rack, Point(1, 1), Point(9, 1), cfg)
        scattered = [p for p in paths if p.kind is PathKind.SCATTERED]
        assert len(scattered) == 1
        s = scattered[0]
        centre = Point(5, 5)
        expected = Point(1, 1).distance_to(centre) + centre.distance_to(Point(9, 1))
        assert s.length_m == pytest.approx(expected, abs=1e-6)
        assert s.excess_loss_db == pytest.approx(METAL.scatter_loss_db)

    def test_scatter_disabled(self, room_with_rack):
        cfg = TraceConfig(max_reflection_order=0, include_scatter=False)
        paths = trace_paths(room_with_rack, Point(1, 1), Point(9, 1), cfg)
        assert all(p.kind is not PathKind.SCATTERED for p in paths)


class TestTraceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(max_reflection_order=3)
        with pytest.raises(ValueError):
            TraceConfig(min_component_db=0.0)

    def test_cutoff_drops_weak_components(self, empty_room):
        generous = TraceConfig(max_reflection_order=2, min_component_db=200.0)
        strict = TraceConfig(max_reflection_order=2, min_component_db=5.0)
        tx, rx = Point(2, 2), Point(8, 8)
        assert len(trace_paths(empty_room, tx, rx, strict)) <= len(
            trace_paths(empty_room, tx, rx, generous)
        )

    def test_sorted_by_delay(self, room_with_rack):
        paths = trace_paths(room_with_rack, Point(1, 2), Point(9, 8))
        delays = [p.delay_s for p in paths]
        assert delays == sorted(delays)
