"""Tests for path-loss and unit-conversion helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    SPEED_OF_LIGHT,
    PropagationModel,
    db_to_linear_amplitude,
    dbm_to_mw,
    free_space_path_loss_db,
    mw_to_dbm,
)


class TestConversions:
    def test_dbm_mw_roundtrip(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)
        assert dbm_to_mw(30.0) == pytest.approx(1000.0)
        assert mw_to_dbm(1.0) == pytest.approx(0.0)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)
        with pytest.raises(ValueError):
            mw_to_dbm(-1.0)

    def test_db_to_linear_amplitude(self):
        assert db_to_linear_amplitude(0.0) == pytest.approx(1.0)
        assert db_to_linear_amplitude(-20.0) == pytest.approx(0.1)
        # amplitude squared equals the power ratio
        assert db_to_linear_amplitude(-3.0) ** 2 == pytest.approx(
            dbm_to_mw(-3.0), rel=1e-9
        )

    @given(st.floats(min_value=-120, max_value=40))
    def test_roundtrip_property(self, dbm):
        assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)


class TestFreeSpacePathLoss:
    def test_reference_value(self):
        # ~40 dB at 1 m, 2.4 GHz — the textbook number.
        assert free_space_path_loss_db(1.0, 2.412e9) == pytest.approx(40.1, abs=0.2)

    def test_plus_six_db_per_doubling(self):
        f = 2.412e9
        assert free_space_path_loss_db(2.0, f) - free_space_path_loss_db(
            1.0, f
        ) == pytest.approx(20 * math.log10(2))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 2.4e9)
        with pytest.raises(ValueError):
            free_space_path_loss_db(1.0, 0.0)


class TestPropagationModel:
    def test_matches_fspl_at_reference(self):
        m = PropagationModel(path_loss_exponent=3.0)
        assert m.path_loss_db(1.0) == pytest.approx(
            free_space_path_loss_db(1.0, m.frequency_hz)
        )

    def test_exponent_slope(self):
        m = PropagationModel(path_loss_exponent=2.8)
        slope = m.path_loss_db(10.0) - m.path_loss_db(1.0)
        assert slope == pytest.approx(28.0)

    def test_near_field_clamp(self):
        m = PropagationModel(d_min=0.3)
        assert m.path_loss_db(0.01) == m.path_loss_db(0.3)

    def test_received_power_monotone_in_distance(self):
        m = PropagationModel()
        powers = [m.received_power_dbm(15.0, d) for d in (1, 2, 5, 10, 20)]
        assert powers == sorted(powers, reverse=True)

    def test_extra_loss_subtracts(self):
        m = PropagationModel()
        base = m.received_power_dbm(15.0, 5.0)
        assert m.received_power_dbm(15.0, 5.0, extra_loss_db=12.0) == pytest.approx(
            base - 12.0
        )
        # Negative extra loss (shadowing gain) adds power.
        assert m.received_power_dbm(15.0, 5.0, extra_loss_db=-3.0) == pytest.approx(
            base + 3.0
        )

    def test_delay(self):
        m = PropagationModel()
        assert m.delay_s(SPEED_OF_LIGHT) == pytest.approx(1.0)
        assert m.delay_s(3.0) == pytest.approx(3.0 / SPEED_OF_LIGHT)
        with pytest.raises(ValueError):
            m.delay_s(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PropagationModel(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            PropagationModel(reference_distance_m=0.0)

    @given(
        st.floats(min_value=0.5, max_value=100),
        st.floats(min_value=0.5, max_value=100),
    )
    @settings(max_examples=50)
    def test_monotonicity_property(self, d1, d2):
        m = PropagationModel(path_loss_exponent=2.5)
        if d1 < d2:
            assert m.path_loss_db(d1) <= m.path_loss_db(d2)
