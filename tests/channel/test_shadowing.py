"""Tests for the correlated shadowing field."""

import numpy as np
import pytest

from repro.channel import LinkSimulator, ShadowingModel
from repro.environment import FloorPlan
from repro.geometry import Point, Polygon


class TestShadowingModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShadowingModel(sigma_db=-1)
        with pytest.raises(ValueError):
            ShadowingModel(decorrelation_m=0)
        with pytest.raises(ValueError):
            ShadowingModel(grid_spacing_m=0)

    def test_zero_sigma_is_zero_field(self):
        m = ShadowingModel(sigma_db=0.0)
        assert m.field_db(Point(3, 4)) == 0.0
        assert m.link_shadowing_db(Point(0, 0), Point(5, 5)) == 0.0

    def test_deterministic(self):
        m1 = ShadowingModel(sigma_db=4.0, seed=7)
        m2 = ShadowingModel(sigma_db=4.0, seed=7)
        p = Point(12.3, -4.5)
        assert m1.field_db(p) == m2.field_db(p)

    def test_seeds_differ(self):
        p = Point(3, 3)
        a = ShadowingModel(sigma_db=4.0, seed=1).field_db(p)
        b = ShadowingModel(sigma_db=4.0, seed=2).field_db(p)
        assert a != b

    def test_field_statistics(self):
        """Zero mean, roughly the configured sigma."""
        m = ShadowingModel(sigma_db=4.0, seed=3, decorrelation_m=3.0)
        rng = np.random.default_rng(0)
        # Sample far apart so draws are nearly independent.
        samples = [
            m.field_db(Point(float(x), float(y)))
            for x, y in rng.uniform(0, 2000, size=(300, 2))
        ]
        assert abs(np.mean(samples)) < 1.0
        assert 2.5 < np.std(samples) < 5.5

    def test_spatial_correlation(self):
        """Nearby points agree; distant points do not."""
        m = ShadowingModel(sigma_db=4.0, seed=5, decorrelation_m=4.0)
        rng = np.random.default_rng(1)
        near_diffs, far_diffs = [], []
        for _ in range(120):
            base = Point(*rng.uniform(0, 500, 2))
            near = Point(base.x + 0.5, base.y)
            far = Point(base.x + 40.0, base.y)
            v = m.field_db(base)
            near_diffs.append(abs(m.field_db(near) - v))
            far_diffs.append(abs(m.field_db(far) - v))
        assert np.mean(near_diffs) < np.mean(far_diffs) / 2

    def test_link_shadowing_variance_preserved(self):
        m = ShadowingModel(sigma_db=4.0, seed=9, decorrelation_m=3.0)
        rng = np.random.default_rng(2)
        vals = []
        for _ in range(300):
            tx = Point(*rng.uniform(0, 3000, 2))
            rx = Point(tx.x + rng.uniform(1, 10), tx.y)
            vals.append(m.link_shadowing_db(tx, rx))
        assert 2.5 < np.std(vals) < 5.5


class TestLinkSimulatorIntegration:
    def test_shadowing_shifts_all_components_equally(self):
        plan = FloorPlan("room", Polygon.rectangle(0, 0, 20, 20))
        plain = LinkSimulator(plan)
        shadowed = LinkSimulator(
            plan, shadowing=ShadowingModel(sigma_db=6.0, seed=4)
        )
        tx, rx = Point(2, 2), Point(15, 9)
        p0 = plain.paths(tx, rx)
        p1 = shadowed.paths(tx, rx)
        assert len(p0) == len(p1)
        offsets = {
            round(b.excess_loss_db - a.excess_loss_db, 9)
            for a, b in zip(p0, p1)
        }
        assert len(offsets) == 1  # one common link-level offset
        assert offsets != {0.0}

    def test_shadowing_stable_per_link(self):
        plan = FloorPlan("room", Polygon.rectangle(0, 0, 20, 20))
        sim = LinkSimulator(plan, shadowing=ShadowingModel(sigma_db=6.0, seed=4))
        tx, rx = Point(2, 2), Point(15, 9)
        sim_paths = sim.paths(tx, rx)
        sim.clear_cache()
        again = sim.paths(tx, rx)
        assert [p.excess_loss_db for p in sim_paths] == [
            p.excess_loss_db for p in again
        ]
