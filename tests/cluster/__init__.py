"""Tests for the repro.cluster subsystem."""
