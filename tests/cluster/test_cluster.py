"""Tests for the LocalizationCluster façade.

The cluster's two-sided contract: with no faults, any shard/replica
shape answers bit-identically to one sequential LocalizationService;
with faults injected, availability is preserved by failover/hedging and
every non-fresh answer is flagged, never silently wrong.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    FaultPlan,
    LocalizationCluster,
    ReplicaState,
    RetryPolicy,
    route_key,
)
from repro.core import NomLocLocalizer, NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import run_campaign, run_campaign_via_service
from repro.serving import LocalizationRequest, LocalizationService


@pytest.fixture(scope="module")
def lab():
    return get_scenario("lab")


@pytest.fixture(scope="module")
def lab_system(lab):
    return NomLocSystem(lab, SystemConfig(packets_per_link=4))


@pytest.fixture(scope="module")
def anchor_sets(lab, lab_system):
    """Six seeded queries across the lab's test sites."""
    sets = []
    for i in range(6):
        site = lab.test_sites[i % len(lab.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([42, i]))
        sets.append((site, tuple(lab_system.gather_anchors(site, rng))))
    return sets


@pytest.fixture(scope="module")
def reference(lab, anchor_sets):
    """The bit-exactness baseline: one sequential service."""
    with LocalizationService(lab.plan.boundary) as service:
        return service.batch([a for _, a in anchor_sets])


def primary_of(cluster, area):
    """(shard, primary replica index) the router picks for one venue."""
    shard, order = cluster.router.route(
        route_key(area, cluster.localizer_config)
    )
    return shard, order[0]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"replicas_per_shard": 0},
            {"heartbeat_every": -1},
            {"latency_window": 0},
            {"suspect_after": 0},
        ],
    )
    def test_bad_knobs_rejected(self, lab, kwargs):
        with pytest.raises(ValueError):
            LocalizationCluster(
                lab.plan.boundary, config=ClusterConfig(**kwargs)
            )


class TestBitExactness:
    @pytest.mark.parametrize(
        "shards,replicas", [(1, 1), (2, 2), (3, 2)]
    )
    def test_matches_single_sequential_service(
        self, lab, anchor_sets, reference, shards, replicas
    ):
        config = ClusterConfig(num_shards=shards, replicas_per_shard=replicas)
        with LocalizationCluster(lab.plan.boundary, config=config) as cluster:
            responses = cluster.batch([a for _, a in anchor_sets])
        for resp, ref in zip(responses, reference):
            assert not resp.degraded
            assert resp.position == ref.position
            assert (
                resp.estimate.relaxation_cost == ref.estimate.relaxation_cost
            )
            assert (
                resp.estimate.num_constraints == ref.estimate.num_constraints
            )

    def test_one_venue_routes_to_one_shard_and_replica(self, lab, anchor_sets):
        config = ClusterConfig(num_shards=3, replicas_per_shard=2)
        with LocalizationCluster(lab.plan.boundary, config=config) as cluster:
            responses = cluster.batch([a for _, a in anchor_sets])
        assert len({r.shard for r in responses}) == 1
        assert len({r.replica for r in responses}) == 1

    def test_requests_carry_query_ids_and_accept_bare_anchors(
        self, lab, anchor_sets
    ):
        _, anchors = anchor_sets[0]
        with LocalizationCluster(lab.plan.boundary) as cluster:
            tagged = cluster.batch(
                [LocalizationRequest(anchors, query_id="q-9"), anchors]
            )
        assert tagged[0].query_id == "q-9"
        assert tagged[1].position == tagged[0].position


class TestMicroBatching:
    @pytest.mark.parametrize("shards,replicas", [(1, 1), (2, 2)])
    def test_coalesced_batch_matches_reference(
        self, lab, anchor_sets, reference, shards, replicas
    ):
        from repro.serving import ServingConfig

        config = ClusterConfig(
            num_shards=shards,
            replicas_per_shard=replicas,
            serving=ServingConfig(lp_batch=4),
        )
        with LocalizationCluster(lab.plan.boundary, config=config) as cluster:
            responses = cluster.batch([a for _, a in anchor_sets])
        for resp, ref in zip(responses, reference):
            assert not resp.degraded
            assert resp.position == ref.position
            assert (
                resp.estimate.relaxation_cost == ref.estimate.relaxation_cost
            )
            assert (
                resp.estimate.num_constraints == ref.estimate.num_constraints
            )

    def test_coalesced_batch_with_crash_fails_over(
        self, lab, anchor_sets, reference
    ):
        from repro.serving import ServingConfig

        config = ClusterConfig(
            num_shards=1,
            replicas_per_shard=2,
            serving=ServingConfig(lp_batch=4),
        )
        probe = LocalizationCluster(lab.plan.boundary, config=config)
        shard, primary = primary_of(probe, lab.plan.boundary)
        probe.close()
        plan = FaultPlan.crash(shard, primary, after=0)
        with LocalizationCluster(
            lab.plan.boundary, config=config, fault_plan=plan
        ) as cluster:
            responses = cluster.batch([a for _, a in anchor_sets])
            snap = cluster.metrics_snapshot()
        # Queries hit by the crash drop out of the coalesced run and
        # retry through the scalar path — nothing is lost or unflagged.
        for resp, ref in zip(responses, reference):
            assert not resp.degraded
            assert resp.position == ref.position
        assert snap["availability"] == 1.0
        assert snap["failovers"] >= 1

    def test_heartbeat_every_forces_scalar_path(
        self, lab, anchor_sets, reference
    ):
        from repro.serving import ServingConfig

        # Count-based heartbeats interleave with queries; coalescing
        # would change when sweeps fire, so lp_batch defers to it.
        config = ClusterConfig(
            num_shards=1,
            replicas_per_shard=2,
            heartbeat_every=2,
            serving=ServingConfig(lp_batch=4),
        )
        with LocalizationCluster(lab.plan.boundary, config=config) as cluster:
            responses = cluster.batch([a for _, a in anchor_sets])
        for resp, ref in zip(responses, reference):
            assert resp.position == ref.position


class TestFailover:
    def test_primary_crash_fails_over_without_losing_answers(
        self, lab, anchor_sets, reference
    ):
        config = ClusterConfig(num_shards=1, replicas_per_shard=2)
        probe = LocalizationCluster(lab.plan.boundary, config=config)
        shard, primary = primary_of(probe, lab.plan.boundary)
        probe.close()
        plan = FaultPlan.crash(shard, primary, after=0)
        with LocalizationCluster(
            lab.plan.boundary, config=config, fault_plan=plan
        ) as cluster:
            responses = cluster.batch([a for _, a in anchor_sets])
            snap = cluster.metrics_snapshot()
        # The first query fails over; after that the health machine
        # routes around the suspect primary entirely.  Either way every
        # answer comes from the secondary, bit-exact.
        for resp, ref in zip(responses, reference):
            assert not resp.degraded
            assert resp.position == ref.position
        assert responses[0].failovers >= 1
        assert snap["availability"] == 1.0
        assert snap["failovers"] >= 1
        assert cluster.replica_states()[(shard, primary)] in (
            ReplicaState.SUSPECT,
            ReplicaState.DEAD,
        )

    def test_whole_group_down_degrades_to_flagged_fallback(
        self, lab, anchor_sets
    ):
        plan = FaultPlan.crash(0, 0, after=0)
        with LocalizationCluster(
            lab.plan.boundary, fault_plan=plan
        ) as cluster:
            responses = cluster.batch([a for _, a in anchor_sets[:3]])
            snap = cluster.metrics_snapshot()
        for resp in responses:
            assert resp.degraded
            assert resp.reason == "unavailable"
            assert resp.estimate is None
            assert resp.replica is None
            # Coarse, but still a position inside the venue.
            assert lab.plan.boundary.contains(resp.position)
        assert snap["availability"] < 1.0
        assert snap["unavailable"] == 3

    def test_retry_budget_caps_amplification(self, lab, anchor_sets):
        config = ClusterConfig(
            num_shards=1,
            replicas_per_shard=1,
            retry=RetryPolicy(budget_ratio=0.0, budget_burst=0),
        )
        plan = FaultPlan.crash(0, 0, after=0)
        with LocalizationCluster(
            lab.plan.boundary, config=config, fault_plan=plan
        ) as cluster:
            resp = cluster.locate(anchor_sets[0][1])
            snap = cluster.metrics_snapshot()
        assert resp.reason == "unavailable"
        assert snap["retries"] == 0
        assert snap["retry_denied"] == 1
        assert snap["retry_budget"]["denied"] == 1


class TestRejoin:
    def test_crashed_replica_rejoins_via_heartbeats(self, lab, anchor_sets):
        config = ClusterConfig(
            num_shards=1, replicas_per_shard=2, dead_after=3, rejoin_after=2
        )
        probe = LocalizationCluster(lab.plan.boundary, config=config)
        shard, primary = primary_of(probe, lab.plan.boundary)
        probe.close()
        plan = FaultPlan.crash(shard, primary, after=0, until=3)
        with LocalizationCluster(
            lab.plan.boundary, config=config, fault_plan=plan
        ) as cluster:
            # Query 0 fails over (SUSPECT); two failed probes finish the
            # demotion to DEAD while the fault is still active.
            cluster.batch([anchor_sets[0][1]])
            cluster.heartbeat()
            cluster.heartbeat()
            assert (
                cluster.replica_states()[(shard, primary)]
                is ReplicaState.DEAD
            )
            # Advance the fault clock past the window; the secondary
            # serves while the primary is down.
            cluster.batch([a for _, a in anchor_sets[1:3]])
            # Fault cleared (query index >= 3): probes bring it back,
            # slowly — probation first, then healthy.
            states = cluster.heartbeat()
            assert states[(shard, primary)] is ReplicaState.REJOINING
            states = cluster.heartbeat()
            assert states[(shard, primary)] is ReplicaState.HEALTHY


class TestStaleTopology:
    def test_stale_replica_answers_are_flagged_not_wrong(
        self, lab, anchor_sets
    ):
        config = ClusterConfig(num_shards=1, replicas_per_shard=2)
        probe = LocalizationCluster(lab.plan.boundary, config=config)
        shard, primary = primary_of(probe, lab.plan.boundary)
        probe.close()
        plan = FaultPlan.stale_topology(shard, primary, after=0, until=3)
        localizer = NomLocLocalizer(lab.plan.boundary)
        with LocalizationCluster(
            lab.plan.boundary, config=config, fault_plan=plan
        ) as cluster:
            # A nomadic AP moves; the faulted primary misses the push.
            cluster.note_topology_change()
            stale_resps = cluster.batch([a for _, a in anchor_sets[:3]])
            # Fault window over: the heartbeat sweep re-syncs the primary.
            cluster.heartbeat()
            fresh = cluster.locate(anchor_sets[3][1])
            snap = cluster.metrics_snapshot()
        for (_, anchors), resp in zip(anchor_sets[:3], stale_resps):
            assert resp.degraded
            assert resp.reason == "stale-topology"
            # Staleness flags the topology version, never the solve.
            assert resp.estimate is not None
            assert resp.position == localizer.locate(anchors).position
        assert not fresh.degraded
        assert snap["stale_flagged"] == 3
        assert snap["topology_version"] == 1


class TestHedging:
    def test_hedged_answers_stay_bit_exact(self, lab, anchor_sets, reference):
        config = ClusterConfig(
            num_shards=1,
            replicas_per_shard=2,
            retry=RetryPolicy(hedge_after_s=0.0),
        )
        with LocalizationCluster(lab.plan.boundary, config=config) as cluster:
            responses = cluster.batch([a for _, a in anchor_sets])
            snap = cluster.metrics_snapshot()
        for resp, ref in zip(responses, reference):
            assert not resp.degraded
            assert resp.position == ref.position
        # An immediate hedge threshold fires speculative duplicates
        # until the retry budget runs dry.
        assert snap["hedges"] >= 1


class TestLifecycle:
    def test_closed_cluster_refuses_queries(self, lab, anchor_sets):
        cluster = LocalizationCluster(lab.plan.boundary)
        cluster.locate(anchor_sets[0][1])
        snapshot = cluster.drain()
        assert snapshot["routed"] == 1
        with pytest.raises(RuntimeError):
            cluster.locate(anchor_sets[0][1])
        cluster.close()  # idempotent

    def test_heartbeat_every_n_queries(self, lab, anchor_sets):
        config = ClusterConfig(heartbeat_every=2)
        with LocalizationCluster(lab.plan.boundary, config=config) as cluster:
            cluster.batch([a for _, a in anchor_sets[:5]])
            snap = cluster.metrics_snapshot()
        assert snap["heartbeat_rounds"] == 2  # at query indices 2 and 4


class TestMetricsSnapshot:
    def test_layout_covers_fleet_and_replicas(self, lab, anchor_sets):
        config = ClusterConfig(num_shards=2, replicas_per_shard=2)
        with LocalizationCluster(lab.plan.boundary, config=config) as cluster:
            cluster.batch([a for _, a in anchor_sets])
            snap = cluster.metrics_snapshot()
        assert snap["services"]["replica_count"] == 4
        assert snap["services"]["completed"] == len(anchor_sets)
        assert len(snap["replicas"]) == 4
        assert set(snap["states"].values()) == {"healthy"}
        assert snap["retry_budget"]["attempts"] == len(anchor_sets)
        assert snap["topology_version"] == 0


class TestCampaignViaCluster:
    def test_matches_direct_campaign(self, lab, lab_system):
        sites = lab.test_sites[:3]
        direct = run_campaign(lab_system, sites, repetitions=2, seed=11)
        config = ClusterConfig(num_shards=2, replicas_per_shard=2)
        with LocalizationCluster(lab.plan.boundary, config=config) as cluster:
            served = run_campaign_via_service(
                cluster,
                lab_system.gather_anchors,
                sites,
                repetitions=2,
                seed=11,
            )
        assert served.per_site_means() == pytest.approx(
            direct.per_site_means(), abs=1e-12
        )
