"""Tests for the injectable fault plans and their injector."""

import time

import pytest

from repro.cluster import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    ReplicaCrashed,
)
from repro.serving import QueueFullError


class TestFault:
    def test_window_validated(self):
        with pytest.raises(ValueError):
            Fault(FaultKind.CRASH, 0, 0, after_query=-1)
        with pytest.raises(ValueError):
            Fault(FaultKind.CRASH, 0, 0, after_query=5, until_query=5)
        with pytest.raises(ValueError):
            Fault(FaultKind.LATENCY, 0, 0, latency_s=-1.0)

    def test_active_window_is_half_open(self):
        fault = Fault(FaultKind.CRASH, 1, 2, after_query=10, until_query=20)
        assert not fault.active(1, 2, 9)
        assert fault.active(1, 2, 10)
        assert fault.active(1, 2, 19)
        assert not fault.active(1, 2, 20)

    def test_only_targets_its_replica(self):
        fault = Fault(FaultKind.CRASH, 1, 2)
        assert fault.active(1, 2, 0)
        assert not fault.active(1, 0, 0)
        assert not fault.active(0, 2, 0)

    def test_open_ended_fault_never_clears(self):
        fault = Fault(FaultKind.CRASH, 0, 0, after_query=3)
        assert fault.active(0, 0, 10**9)


class TestFaultPlan:
    def test_empty_by_default(self):
        assert FaultPlan().faults == ()

    def test_constructors_and_union(self):
        plan = FaultPlan.crash(0, 1, after=40).plus(
            FaultPlan.latency_spike(0, 0, latency_s=0.2)
        )
        assert len(plan.faults) == 2
        assert plan.active_kinds(0, 1, 50) == {FaultKind.CRASH}
        assert plan.active_kinds(0, 0, 50) == {FaultKind.LATENCY}
        assert plan.active_kinds(0, 1, 10) == set()

    def test_plans_are_immutable(self):
        plan = FaultPlan.crash(0, 0)
        with pytest.raises(AttributeError):
            plan.faults = ()


class TestFaultInjector:
    def test_empty_plan_is_a_no_op(self):
        injector = FaultInjector()
        injector.on_query(0, 0, 0)
        injector.on_heartbeat(0, 0, 0)
        assert not injector.stale_active(0, 0, 0)

    def test_crash_raises_on_query_and_heartbeat(self):
        injector = FaultInjector(FaultPlan.crash(0, 1, after=2))
        injector.on_query(0, 1, 1)  # before the window: fine
        with pytest.raises(ReplicaCrashed):
            injector.on_query(0, 1, 2)
        with pytest.raises(ReplicaCrashed):
            injector.on_heartbeat(0, 1, 2)

    def test_queue_full_storm_sheds(self):
        injector = FaultInjector(FaultPlan.queue_full_storm(1, 0))
        with pytest.raises(QueueFullError):
            injector.on_query(1, 0, 0)
        injector.on_heartbeat(1, 0, 0)  # shedding replicas still heartbeat

    def test_latency_spike_sleeps(self):
        injector = FaultInjector(
            FaultPlan.latency_spike(0, 0, latency_s=0.02)
        )
        started = time.perf_counter()
        injector.on_query(0, 0, 0)
        assert time.perf_counter() - started >= 0.02

    def test_stale_topology_never_raises_only_flags(self):
        injector = FaultInjector(
            FaultPlan.stale_topology(0, 0, after=5, until=10)
        )
        injector.on_query(0, 0, 7)
        injector.on_heartbeat(0, 0, 7)
        assert injector.stale_active(0, 0, 7)
        assert not injector.stale_active(0, 0, 4)
        assert not injector.stale_active(0, 0, 10)
