"""Tests for the replica health state machine."""

import pytest

from repro.cluster import HealthMonitor, ReplicaState


@pytest.fixture
def monitor():
    m = HealthMonitor(suspect_after=1, dead_after=3, rejoin_after=2)
    m.register("r0")
    return m


class TestValidation:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            HealthMonitor(suspect_after=0)
        with pytest.raises(ValueError):
            HealthMonitor(suspect_after=3, dead_after=2)
        with pytest.raises(ValueError):
            HealthMonitor(rejoin_after=0)

    def test_unregistered_replica_raises(self, monitor):
        with pytest.raises(KeyError):
            monitor.state("ghost")


class TestDemotion:
    def test_starts_healthy(self, monitor):
        assert monitor.state("r0") is ReplicaState.HEALTHY
        assert monitor.available("r0")

    def test_failures_demote_to_suspect_then_dead(self, monitor):
        assert monitor.record_failure("r0") is ReplicaState.SUSPECT
        assert monitor.record_failure("r0") is ReplicaState.SUSPECT
        assert monitor.record_failure("r0") is ReplicaState.DEAD
        assert not monitor.available("r0")

    def test_success_clears_suspicion(self, monitor):
        monitor.record_failure("r0")
        assert monitor.record_success("r0") is ReplicaState.HEALTHY
        # The failure streak reset: demotion needs fresh consecutive ones.
        monitor.record_failure("r0")
        monitor.record_failure("r0")
        assert monitor.state("r0") is ReplicaState.SUSPECT


class TestRejoin:
    def _kill(self, monitor):
        for _ in range(3):
            monitor.record_failure("r0")
        assert monitor.state("r0") is ReplicaState.DEAD

    def test_dead_replica_rejoins_slowly(self, monitor):
        self._kill(monitor)
        assert monitor.record_success("r0") is ReplicaState.REJOINING
        assert monitor.record_success("r0") is ReplicaState.HEALTHY

    def test_flapping_rejoiner_dies_again(self, monitor):
        self._kill(monitor)
        assert monitor.record_success("r0") is ReplicaState.REJOINING
        assert monitor.record_failure("r0") is ReplicaState.DEAD

    def test_probe_feeds_the_machine(self, monitor):
        self._kill(monitor)
        assert monitor.probe("r0", lambda: True) is ReplicaState.REJOINING
        assert monitor.probe("r0", lambda: True) is ReplicaState.HEALTHY

    def test_probe_exception_counts_as_failure(self, monitor):
        def broken():
            raise RuntimeError("unreachable")

        assert monitor.probe("r0", broken) is ReplicaState.SUSPECT


class TestRoutingView:
    def test_rank_orders_states(self, monitor):
        ranks = {}
        for state in (
            ReplicaState.HEALTHY,
            ReplicaState.REJOINING,
            ReplicaState.SUSPECT,
            ReplicaState.DEAD,
        ):
            monitor.register("r0")  # reset to HEALTHY
            while monitor.state("r0") is not state:
                if state is ReplicaState.REJOINING:
                    for _ in range(3):
                        monitor.record_failure("r0")
                    monitor.record_success("r0")
                else:
                    monitor.record_failure("r0")
            ranks[state] = monitor.rank("r0")
        assert (
            ranks[ReplicaState.HEALTHY]
            < ranks[ReplicaState.REJOINING]
            < ranks[ReplicaState.SUSPECT]
            < ranks[ReplicaState.DEAD]
        )

    def test_states_snapshot(self, monitor):
        monitor.register("r1")
        monitor.record_failure("r1")
        states = monitor.states()
        assert states == {
            "r0": ReplicaState.HEALTHY,
            "r1": ReplicaState.SUSPECT,
        }
