"""Tests for cluster-level metrics and the fleet roll-up."""

import json

from repro.cluster import ClusterMetrics, merge_service_snapshots


class TestClusterMetrics:
    def test_availability_counts_only_fallbacks_against(self):
        metrics = ClusterMetrics()
        metrics.record_query(0.01)
        metrics.record_query(0.01, degraded=True, stale=True)
        metrics.record_query(0.05, degraded=True, unavailable=True)
        snap = metrics.snapshot()
        assert snap["routed"] == 3
        assert snap["answered"] == 2
        assert snap["unavailable"] == 1
        assert snap["degraded"] == 2
        assert snap["stale_flagged"] == 1
        assert snap["availability"] == 2 / 3

    def test_failover_retry_hedge_accounting(self):
        metrics = ClusterMetrics()
        metrics.record_query(0.01, failovers=2, retries=1, hedged=True)
        metrics.record_retry_denied()
        metrics.record_heartbeat_round()
        snap = metrics.snapshot()
        assert snap["failovers"] == 2
        assert snap["retries"] == 1
        assert snap["hedges"] == 1
        assert snap["retry_denied"] == 1
        assert snap["heartbeat_rounds"] == 1

    def test_empty_cluster_is_fully_available(self):
        snap = ClusterMetrics().snapshot()
        assert snap["availability"] == 1.0
        assert snap["routed"] == 0


class TestMergeServiceSnapshots:
    def test_counters_sum_and_depth_takes_worst(self):
        merged = merge_service_snapshots(
            [
                {
                    "completed": 3,
                    "cache_hits": 2,
                    "cache_misses": 1,
                    "queue_depth": 0,
                    "queue_rejected_total": 1,
                },
                {
                    "completed": 5,
                    "cache_hits": 4,
                    "cache_misses": 1,
                    "queue_depth": 7,
                },
            ]
        )
        assert merged["completed"] == 8
        assert merged["queue_depth"] == 7
        assert merged["queue_rejected_total"] == 1
        assert merged["cache_hit_rate"] == 6 / 8
        assert merged["replica_count"] == 2

    def test_empty_fleet(self):
        merged = merge_service_snapshots([])
        assert merged["replica_count"] == 0
        assert merged["cache_hit_rate"] == 0.0


class TestClusterMetricsToJson:
    def test_to_json_dumps_cleanly_with_stable_order(self):
        metrics = ClusterMetrics()
        metrics.record_query(0.01)
        metrics.record_query(0.02, degraded=True, hedged=True)
        doc = metrics.to_json()
        assert doc == json.loads(json.dumps(doc, sort_keys=True))
        assert list(doc) == sorted(doc)
        assert doc["routed"] == 2
        assert doc["hedges"] == 1

    def test_to_json_matches_snapshot_values(self):
        metrics = ClusterMetrics()
        metrics.record_query(0.125)
        snap = metrics.snapshot()
        doc = metrics.to_json()
        assert doc["latency_p95_s"] == snap["latency_p95_s"]  # exact floats
        assert doc["availability"] == snap["availability"]
