"""Tests for retry policy, backoff and the retry budget."""

import random

import pytest

from repro.cluster import RetryBudget, RetryPolicy, backoff_s


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff_s": -0.1},
            {"backoff_multiplier": 0.5},
            {"base_backoff_s": 0.2, "max_backoff_s": 0.1},
            {"jitter": 1.5},
            {"hedge_after_s": -1.0},
            {"budget_ratio": -0.1},
            {"budget_burst": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_defaults_valid(self):
        RetryPolicy()  # does not raise


class TestBackoff:
    def test_retry_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_s(RetryPolicy(), 0)

    def test_deterministic_exponential_envelope(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, backoff_multiplier=2.0, max_backoff_s=1.0
        )
        assert backoff_s(policy, 1) == pytest.approx(0.01)
        assert backoff_s(policy, 2) == pytest.approx(0.02)
        assert backoff_s(policy, 3) == pytest.approx(0.04)

    def test_capped_at_max(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, backoff_multiplier=10.0, max_backoff_s=0.05
        )
        assert backoff_s(policy, 5) == pytest.approx(0.05)

    def test_jitter_shrinks_within_bounds_and_reproduces(self):
        policy = RetryPolicy(base_backoff_s=0.01, jitter=0.5)
        first = backoff_s(policy, 1, random.Random(7))
        again = backoff_s(policy, 1, random.Random(7))
        assert first == again  # seeded -> reproducible
        assert 0.005 <= first <= 0.01  # within [1 - jitter, 1] * base


class TestRetryBudget:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(burst=-1)

    def test_burst_grants_cold_start_retries(self):
        budget = RetryBudget(ratio=0.0, burst=2)
        assert budget.allow_retry()
        assert budget.allow_retry()
        assert not budget.allow_retry()

    def test_attempts_earn_retry_tokens(self):
        budget = RetryBudget(ratio=0.5, burst=0)
        assert not budget.allow_retry()  # nothing earned yet
        for _ in range(4):
            budget.note_attempt()
        assert budget.allow_retry()
        assert budget.allow_retry()
        assert not budget.allow_retry()  # 0.5 * 4 = 2 tokens spent

    def test_snapshot_reports_ledger(self):
        budget = RetryBudget(ratio=0.0, burst=1)
        budget.note_attempt()
        budget.allow_retry()
        budget.allow_retry()
        snap = budget.snapshot()
        assert snap["attempts"] == 1
        assert snap["retries"] == 1
        assert snap["denied"] == 1
        assert snap["ratio"] == 0.0
        assert snap["burst"] == 1
