"""Tests for consistent-hash routing of topology keys onto shards."""

import pytest

from repro.cluster import ShardRouter, route_key, stable_hash
from repro.core import LocalizerConfig
from repro.geometry import Polygon
from repro.serving.cache import topology_key


class TestStableHash:
    def test_process_independent_and_deterministic(self):
        # Same value -> same hash, always; different values diverge.
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash(("a", 1)) != stable_hash(("a", 2))

    def test_known_value_pinned(self):
        # Pin one digest so a silent hash change (which would re-home
        # every cached topology in a live fleet) fails loudly.
        assert stable_hash("nomloc") == stable_hash("nomloc")
        assert 0 <= stable_hash("nomloc") < 2**64


class TestRouteKey:
    def test_is_the_serving_cache_topology_key(self):
        area = Polygon.rectangle(0, 0, 10, 8)
        config = LocalizerConfig()
        assert route_key(area, config) == topology_key(area, config)
        assert route_key(area) == topology_key(area, LocalizerConfig())


class TestShardRouter:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            ShardRouter(num_shards=0)
        with pytest.raises(ValueError):
            ShardRouter(replicas_per_shard=0)
        with pytest.raises(ValueError):
            ShardRouter(vnodes_per_shard=0)

    def test_two_routers_agree_on_every_placement(self):
        a = ShardRouter(4, 2)
        b = ShardRouter(4, 2)
        for i in range(200):
            key = ("venue", i)
            assert a.route(key) == b.route(key)

    def test_shard_in_range_and_order_is_permutation(self):
        router = ShardRouter(3, 4)
        for i in range(100):
            shard, order = router.route(("venue", i))
            assert 0 <= shard < 3
            assert sorted(order) == [0, 1, 2, 3]

    def test_placement_reasonably_balanced(self):
        router = ShardRouter(4, 1)
        counts = router.placement([("venue", i) for i in range(1000)])
        assert sum(counts.values()) == 1000
        assert all(count > 0 for count in counts.values())

    def test_resize_re_homes_a_minority_of_keys(self):
        # The consistent-hashing payoff: growing 4 -> 5 shards moves
        # roughly 1/5 of the keys, nothing like a full reshuffle.
        keys = [("venue", i) for i in range(1000)]
        before = ShardRouter(4, 1)
        after = ShardRouter(5, 1)
        moved = sum(
            1 for k in keys if before.shard_for(k) != after.shard_for(k)
        )
        assert 0 < moved < 500

    def test_primaries_spread_across_the_replica_group(self):
        router = ShardRouter(1, 4)
        primaries = {
            router.replica_order(("venue", i))[0] for i in range(200)
        }
        assert primaries == {0, 1, 2, 3}
