"""Tests for region-centre estimators."""

import numpy as np
import pytest

from repro.core import CenterMethod, feasible_polygon, region_center
from repro.geometry import HalfSpace, Point, Polygon


BOUND = Polygon.rectangle(-20, -20, 20, 20)


def box_hs(cx, cy, half):
    return [
        HalfSpace(1, 0, cx + half),
        HalfSpace(-1, 0, -(cx - half)),
        HalfSpace(0, 1, cy + half),
        HalfSpace(0, -1, -(cy - half)),
    ]


class TestFeasiblePolygon:
    def test_square(self):
        region = feasible_polygon(box_hs(3, 4, 2), BOUND)
        assert region is not None
        assert region.area() == pytest.approx(16.0)

    def test_empty(self):
        hs = [HalfSpace(1, 0, 0), HalfSpace(-1, 0, -1)]
        assert feasible_polygon(hs, BOUND) is None

    def test_no_constraints_returns_bound(self):
        region = feasible_polygon([], BOUND)
        assert region is not None
        assert region.area() == pytest.approx(BOUND.area())


class TestRegionCenter:
    @pytest.mark.parametrize(
        "method",
        [CenterMethod.CENTROID, CenterMethod.CHEBYSHEV, CenterMethod.ANALYTIC],
    )
    def test_square_center_all_methods(self, method):
        c = region_center(box_hs(3, -2, 1.5), BOUND, method)
        assert c is not None
        assert c.almost_equals(Point(3, -2), tol=1e-4)

    def test_methods_differ_on_asymmetric_region(self):
        """A thin right triangle separates the three centre notions."""
        hs = [
            HalfSpace(0, -1, 0),  # y >= 0
            HalfSpace(-1, 0, 0),  # x >= 0
            HalfSpace(1, 8, 8),  # x + 8y <= 8
        ]
        centroid = region_center(hs, BOUND, CenterMethod.CENTROID)
        cheb = region_center(hs, BOUND, CenterMethod.CHEBYSHEV)
        assert centroid is not None and cheb is not None
        assert not centroid.almost_equals(cheb, tol=1e-3)

    def test_all_methods_stay_inside(self):
        rng = np.random.default_rng(4)
        for _ in range(10):
            cx, cy = rng.uniform(-5, 5, 2)
            hs = box_hs(cx, cy, float(rng.uniform(0.5, 3.0)))
            # Add a random cut through the box.
            theta = rng.uniform(0, 2 * np.pi)
            hs.append(
                HalfSpace(
                    float(np.cos(theta)),
                    float(np.sin(theta)),
                    float(np.cos(theta) * cx + np.sin(theta) * cy + 0.3),
                )
            )
            region = feasible_polygon(hs, BOUND)
            assert region is not None
            for method in CenterMethod:
                c = region_center(hs, BOUND, method)
                assert c is not None
                assert region.contains(c) or any(
                    c.distance_to(v) < 1e-5 for v in region.vertices
                )

    def test_empty_region_without_fallback(self):
        hs = [HalfSpace(1, 0, 0), HalfSpace(-1, 0, -1)]
        assert region_center(hs, BOUND) is None

    def test_empty_region_with_fallback(self):
        hs = [HalfSpace(1, 0, 0), HalfSpace(-1, 0, -1)]
        c = region_center(hs, BOUND, fallback=np.array([0.5, 0.5]))
        assert c == Point(0.5, 0.5)
