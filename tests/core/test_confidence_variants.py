"""Tests for the alternative confidence functions (Eq. 2-3 family)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CONFIDENCE_FUNCTIONS,
    Anchor,
    LocalizerConfig,
    NomLocLocalizer,
    confidence_factor_power,
    confidence_factor_rational,
    pairwise_constraints,
)
from repro.geometry import Point, Polygon

ratios = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)


class TestEq23Properties:
    """Every registered f must satisfy the paper's Eqs. 2-3."""

    @pytest.mark.parametrize("name", sorted(CONFIDENCE_FUNCTIONS))
    def test_f_of_one_is_half(self, name):
        fn = CONFIDENCE_FUNCTIONS[name]
        assert fn(1.0) == pytest.approx(0.5)

    @given(ratios)
    @settings(max_examples=100)
    def test_reciprocal_identity_all(self, x):
        for fn in CONFIDENCE_FUNCTIONS.values():
            assert fn(x) + fn(1.0 / x) == pytest.approx(1.0, abs=1e-9)

    @given(ratios)
    @settings(max_examples=60)
    def test_nonnegative_all(self, x):
        for fn in CONFIDENCE_FUNCTIONS.values():
            assert fn(x) >= 0.0

    @given(ratios, ratios)
    @settings(max_examples=60)
    def test_monotone_all(self, a, b):
        lo, hi = sorted((a, b))
        if hi - lo < 1e-9:
            return
        for fn in CONFIDENCE_FUNCTIONS.values():
            assert fn(lo) >= fn(hi) - 1e-12

    def test_positive_domain(self):
        for fn in (confidence_factor_rational, confidence_factor_power):
            with pytest.raises(ValueError):
                fn(0.0)

    def test_power_exponent_validation(self):
        with pytest.raises(ValueError):
            confidence_factor_power(1.0, k=0.0)

    def test_power_sharper_than_rational(self):
        """Larger k decides near-ties faster."""
        x = 0.8
        assert confidence_factor_power(x, 2.0) > confidence_factor_rational(x)


class TestConfigIntegration:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            LocalizerConfig(confidence_fn="sigmoid")

    def test_resolve(self):
        cfg = LocalizerConfig(confidence_fn="rational")
        assert cfg.resolve_confidence_fn() is confidence_factor_rational

    def test_weights_differ_between_functions(self):
        anchors = [
            Anchor("A", Point(0, 0), 4.0),
            Anchor("B", Point(10, 0), 1.0),
        ]
        w_paper = pairwise_constraints(anchors)[0].weight
        w_rational = pairwise_constraints(
            anchors, confidence_fn=confidence_factor_rational
        )[0].weight
        assert w_paper != w_rational

    def test_localizer_runs_with_each_function(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        corners = [Point(0.5, 0.5), Point(9.5, 0.5), Point(9.5, 9.5), Point(0.5, 9.5)]
        obj = Point(3, 7)
        anchors = [
            Anchor(f"A{i}", p, 1.0 / (0.1 + obj.distance_to(p)) ** 2)
            for i, p in enumerate(corners)
        ]
        estimates = {}
        for name in CONFIDENCE_FUNCTIONS:
            loc = NomLocLocalizer(square, LocalizerConfig(confidence_fn=name))
            est = loc.locate(anchors)
            assert square.contains(est.position)
            estimates[name] = est.position
        # With consistent judgements, the feasible region (and centre) is
        # the same regardless of weighting.
        assert estimates["paper"].almost_equals(estimates["rational"], tol=1e-6)
