"""Tests for the SP constraint builders."""

import numpy as np
import pytest

from repro.core import (
    BOUNDARY_WEIGHT,
    Anchor,
    ConstraintKind,
    ConstraintSystem,
    WeightedConstraint,
    boundary_constraints,
    pairwise_constraints,
    pairwise_constraints_batch,
)
from repro.geometry import HalfSpace, Point, Polygon


def anchors_square(pdps, nomadic=(False, False, False, False)):
    """Four anchors at the unit-square-ish corners with given PDPs."""
    positions = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
    return [
        Anchor(f"A{i}", p, pdp, nomadic=n)
        for i, (p, pdp, n) in enumerate(zip(positions, pdps, nomadic))
    ]


class TestAnchor:
    def test_positive_pdp_required(self):
        with pytest.raises(ValueError):
            Anchor("X", Point(0, 0), 0.0)


class TestWeightedConstraint:
    def test_positive_weight_required(self):
        with pytest.raises(ValueError):
            WeightedConstraint(HalfSpace(1, 0, 0), 0.0, ConstraintKind.PAIRWISE)


class TestPairwiseConstraints:
    def test_full_pairwise_count(self):
        cs = pairwise_constraints(anchors_square([4, 3, 2, 1]))
        assert len(cs) == 6  # C(4,2), the paper's N = n(n-1)/2

    def test_orientation_follows_pdp(self):
        """The anchor with larger PDP is on the feasible side."""
        anchors = anchors_square([10.0, 1.0, 1.0, 1.0])
        cs = pairwise_constraints(anchors)
        # Points near A0 (the strong anchor) must satisfy all constraints
        # involving A0.
        near_a0 = Point(1, 1)
        for c in cs:
            if "A0" in c.label:
                assert c.label.startswith("A0<")
                assert c.halfspace.contains(near_a0)

    def test_confidence_weights(self):
        anchors = anchors_square([8.0, 8.0, 1.0, 1.0])
        cs = pairwise_constraints(anchors)
        by_label = {c.label: c for c in cs}
        # Equal PDPs -> coin-flip weight 1/2.
        assert by_label["A0<A1"].weight == pytest.approx(0.5)
        # Large disparity -> high weight.
        assert by_label["A0<A2"].weight > 0.9

    def test_nomadic_pairs_skipped_when_disabled(self):
        anchors = anchors_square([4, 3, 2, 1], nomadic=(True, True, False, False))
        cs = pairwise_constraints(anchors, include_nomadic_pairs=False)
        assert len(cs) == 5  # 6 minus the A0-A1 nomadic pair
        labels = {c.label for c in cs}
        assert not any("A0" in l and "A1" in l for l in labels)

    def test_nomadic_pairs_included_by_flag(self):
        anchors = anchors_square([4, 3, 2, 1], nomadic=(True, True, False, False))
        cs = pairwise_constraints(anchors, include_nomadic_pairs=True)
        assert len(cs) == 6

    def test_nomadic_involvement_tags_kind(self):
        anchors = anchors_square([4, 3, 2, 1], nomadic=(True, False, False, False))
        cs = pairwise_constraints(anchors)
        kinds = {c.label: c.kind for c in cs}
        assert kinds["A0<A1"] is ConstraintKind.NOMADIC
        assert kinds["A1<A2"] is ConstraintKind.PAIRWISE

    def test_paper_counting_s_times_n_minus_1(self):
        """3 static APs + S=4 nomadic sites, paper mode: 3 + 4*3 rows."""
        statics = [
            Anchor("AP2", Point(10, 0), 3.0),
            Anchor("AP3", Point(10, 10), 2.0),
            Anchor("AP4", Point(0, 10), 1.0),
        ]
        sites = [
            Anchor(f"AP1@s{i}", Point(2.0 + i, 5.0), 5.0 + i, nomadic=True)
            for i in range(4)
        ]
        cs = pairwise_constraints(statics + sites, include_nomadic_pairs=False)
        assert len(cs) == 3 + 4 * 3

    def test_coincident_anchors_skipped(self):
        a = [Anchor("A", Point(1, 1), 2.0), Anchor("B", Point(1, 1), 3.0)]
        assert pairwise_constraints(a) == []

    def test_normalization(self):
        anchors = anchors_square([4, 3, 2, 1])
        for c in pairwise_constraints(anchors, normalize=True):
            assert np.hypot(c.halfspace.ax, c.halfspace.ay) == pytest.approx(1.0)

    def test_unnormalized_matches_eq7(self):
        near, far = Point(0, 0), Point(10, 0)
        cs = pairwise_constraints(
            [Anchor("N", near, 5.0), Anchor("F", far, 1.0)], normalize=False
        )
        hs = cs[0].halfspace
        assert hs.ax == pytest.approx(2 * (far.x - near.x))
        assert hs.b == pytest.approx(far.x**2 - near.x**2)


class TestBoundaryConstraints:
    def test_rectangle(self):
        area = Polygon.rectangle(0, 0, 10, 8)
        cs = boundary_constraints(area)
        assert len(cs) == 4
        assert all(c.kind is ConstraintKind.BOUNDARY for c in cs)
        assert all(c.weight == BOUNDARY_WEIGHT for c in cs)
        inside, outside = Point(5, 4), Point(12, 4)
        assert all(c.halfspace.contains(inside) for c in cs)
        assert not all(c.halfspace.contains(outside) for c in cs)

    def test_non_convex_rejected(self):
        l_shape = Polygon.from_coords(
            [(0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10)]
        )
        with pytest.raises(ValueError):
            boundary_constraints(l_shape)

    def test_custom_weight(self):
        area = Polygon.rectangle(0, 0, 4, 4)
        cs = boundary_constraints(area, weight=7.0)
        assert all(c.weight == 7.0 for c in cs)

    def test_explicit_anchor(self):
        area = Polygon.rectangle(0, 0, 4, 4)
        cs = boundary_constraints(area, anchor_position=Point(1, 1))
        assert all(c.halfspace.contains(Point(2, 2)) for c in cs)


class TestConstraintSystem:
    def test_matrices_shape_and_order(self):
        anchors = anchors_square([4, 3, 2, 1])
        rows = pairwise_constraints(anchors)
        system = ConstraintSystem(tuple(rows))
        a, b, w = system.matrices()
        assert a.shape == (6, 2)
        assert b.shape == (6,)
        assert list(w) == [c.weight for c in rows]

    def test_empty_matrices(self):
        a, b, w = ConstraintSystem(()).matrices()
        assert a.shape == (0, 2)

    def test_of_kind_and_extended(self):
        area = Polygon.rectangle(0, 0, 10, 10)
        pw = pairwise_constraints(anchors_square([4, 3, 2, 1]))
        system = ConstraintSystem(tuple(pw)).extended(boundary_constraints(area))
        assert len(system) == 10
        assert len(system.of_kind(ConstraintKind.BOUNDARY)) == 4
        assert len(system.of_kind(ConstraintKind.PAIRWISE)) == 6


class TestPairwiseConstraintsBatch:
    """The batched builder must replay the scalar builder bit for bit."""

    def _queries(self, nq=6, seed=11):
        rng = np.random.default_rng(seed)
        queries = []
        for q in range(nq):
            n = int(rng.integers(2, 7))
            anchors = []
            for i in range(n):
                anchors.append(
                    Anchor(
                        f"A{q}_{i}",
                        Point(
                            float(rng.uniform(0, 20)), float(rng.uniform(0, 20))
                        ),
                        float(rng.uniform(0.05, 9.0)),
                        nomadic=bool(rng.random() < 0.3),
                    )
                )
            queries.append(tuple(anchors))
        return queries

    def assert_rows_identical(self, scalar_rows, batch_rows):
        assert len(scalar_rows) == len(batch_rows)
        for s, b in zip(scalar_rows, batch_rows):
            assert s.halfspace.ax == b.halfspace.ax
            assert s.halfspace.ay == b.halfspace.ay
            assert s.halfspace.b == b.halfspace.b
            assert s.weight == b.weight
            assert s.kind is b.kind
            assert s.label == b.label

    def test_rows_match_scalar(self):
        queries = self._queries()
        batched = pairwise_constraints_batch(queries)
        for anchors, (rows, _) in zip(queries, batched):
            self.assert_rows_identical(pairwise_constraints(anchors), rows)

    def test_matrices_match_listcomp_build(self):
        queries = self._queries(seed=12)
        for rows, (a, b, w) in pairwise_constraints_batch(queries):
            system = ConstraintSystem(tuple(rows))
            a2, b2, w2 = system.matrices()
            assert a.tobytes() == a2.tobytes()
            assert b.tobytes() == b2.tobytes()
            assert w.tobytes() == w2.tobytes()

    def test_nomadic_flag_and_normalization_parity(self):
        queries = self._queries(seed=13)
        for include in (False, True):
            for norm in (False, True):
                batched = pairwise_constraints_batch(
                    queries, include_nomadic_pairs=include, normalize=norm
                )
                for anchors, (rows, _) in zip(queries, batched):
                    self.assert_rows_identical(
                        pairwise_constraints(
                            anchors,
                            include_nomadic_pairs=include,
                            normalize=norm,
                        ),
                        rows,
                    )

    def test_quality_weights_parity_and_error(self):
        queries = self._queries(nq=3, seed=14)
        weights = [
            {a.name: 0.5 for a in anchors} for anchors in queries
        ]
        batched = pairwise_constraints_batch(queries, quality_weights=weights)
        for anchors, qw, (rows, _) in zip(queries, weights, batched):
            self.assert_rows_identical(
                pairwise_constraints(anchors, quality_weights=qw), rows
            )
        bad = [dict(w) for w in weights]
        bad[1][queries[1][0].name] = 0.0
        with pytest.raises(ValueError, match="must be in \\(0, 1\\]"):
            pairwise_constraints_batch(queries, quality_weights=bad)

    def test_cache_values_identical_lookups_deduped(self):
        from repro.serving.cache import BisectorCache

        queries = self._queries(seed=15)
        scalar_cache = BisectorCache()
        batch_cache = BisectorCache()
        for anchors in queries:
            pairwise_constraints(anchors, bisector_cache=scalar_cache)
        batched = pairwise_constraints_batch(queries, bisector_cache=batch_cache)
        for anchors, (rows, _) in zip(queries, batched):
            self.assert_rows_identical(
                pairwise_constraints(anchors, bisector_cache=scalar_cache),
                rows,
            )
        # Second batched pass hits the warm cache and still matches.
        rebatched = pairwise_constraints_batch(queries, bisector_cache=batch_cache)
        for (rows, _), (rows2, _) in zip(batched, rebatched):
            self.assert_rows_identical(rows, rows2)

    def test_coincident_and_short_queries(self):
        p = Point(5, 5)
        coincident = (
            Anchor("C0", p, 2.0),
            Anchor("C1", p, 1.0),
            Anchor("C2", Point(8, 1), 0.5),
        )
        short = (Anchor("S0", Point(1, 1), 1.0),)
        batched = pairwise_constraints_batch([coincident, short, ()])
        rows, (a, b, w) = batched[0]
        self.assert_rows_identical(pairwise_constraints(coincident), rows)
        assert a.shape == (len(rows), 2)
        for rows, (a, b, w) in batched[1:]:
            assert rows == ()
            assert a.shape == (0, 2) and b.shape == (0,) and w.shape == (0,)


class TestConstraintSystemMatricesCache:
    def test_matrices_memoized(self):
        rows = pairwise_constraints(anchors_square([4, 3, 2, 1]))
        system = ConstraintSystem(tuple(rows))
        first = system.matrices()
        second = system.matrices()
        assert first[0] is second[0]
        assert first[1] is second[1]

    def test_with_matrices_preseed_bitwise(self):
        rows = tuple(pairwise_constraints(anchors_square([4, 3, 2, 1])))
        reference = ConstraintSystem(rows)
        a, b, w = reference.matrices()
        preseeded = ConstraintSystem.with_matrices(
            rows, a.copy(), b.copy(), w.copy()
        )
        a2, b2, w2 = preseeded.matrices()
        assert a2.tobytes() == a.tobytes()
        assert b2.tobytes() == b.tobytes()
        assert w2.tobytes() == w.tobytes()
        assert preseeded.constraints == reference.constraints
