"""Tests for the SP localizer on synthetic (noise-free) anchor sets."""

import numpy as np
import pytest

from repro.core import (
    Anchor,
    CenterMethod,
    LocalizerConfig,
    NomLocLocalizer,
)
from repro.geometry import Point, Polygon


def ideal_anchors(positions, obj, nomadic_flags=None):
    """Anchors whose PDPs decay perfectly with distance (no noise)."""
    nomadic_flags = nomadic_flags or [False] * len(positions)
    return [
        Anchor(
            f"A{i}",
            p,
            1.0 / (0.1 + obj.distance_to(p)) ** 2,
            nomadic=n,
        )
        for i, (p, n) in enumerate(zip(positions, nomadic_flags))
    ]


SQUARE = Polygon.rectangle(0, 0, 10, 10)
CORNERS = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]


class TestLocalizerBasics:
    def test_needs_two_anchors(self):
        loc = NomLocLocalizer(SQUARE)
        with pytest.raises(ValueError):
            loc.locate([Anchor("A", Point(1, 1), 1.0)])

    def test_coincident_anchors_rejected(self):
        loc = NomLocLocalizer(SQUARE)
        with pytest.raises(ValueError):
            loc.locate(
                [Anchor("A", Point(1, 1), 1.0), Anchor("B", Point(1, 1), 2.0)]
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LocalizerConfig(boundary_weight=0.0)
        with pytest.raises(ValueError):
            LocalizerConfig(cost_merge_tolerance=-1.0)

    def test_estimate_inside_area(self):
        loc = NomLocLocalizer(SQUARE)
        obj = Point(3, 7)
        est = loc.locate(ideal_anchors(CORNERS, obj))
        assert SQUARE.contains(est.position)

    def test_ideal_judgements_bound_error_by_cell_size(self):
        """With perfect judgements the estimate lands in the object's cell."""
        loc = NomLocLocalizer(SQUARE)
        rng = np.random.default_rng(0)
        for _ in range(20):
            obj = Point(float(rng.uniform(1, 9)), float(rng.uniform(1, 9)))
            est = loc.locate(ideal_anchors(CORNERS, obj))
            assert est.was_feasible
            # 4 corner anchors partition the square into cells of diameter
            # well under the diagonal; be loose but meaningful.
            assert est.error_to(obj) < 4.5

    def test_more_anchors_reduce_error(self):
        loc = NomLocLocalizer(SQUARE)
        rng = np.random.default_rng(1)
        dense_positions = CORNERS + [
            Point(5, 0),
            Point(5, 10),
            Point(0, 5),
            Point(10, 5),
            Point(5, 5),
        ]
        sparse_err, dense_err = [], []
        for _ in range(25):
            obj = Point(float(rng.uniform(1, 9)), float(rng.uniform(1, 9)))
            sparse_err.append(loc.locate(ideal_anchors(CORNERS, obj)).error_to(obj))
            dense_err.append(
                loc.locate(ideal_anchors(dense_positions, obj)).error_to(obj)
            )
        assert np.mean(dense_err) < np.mean(sparse_err)

    def test_object_in_anchor_cell_center_exact(self):
        """Object at the exact centre produces all-equal PDPs, which the
        judgement stage tie-breaks into an ordering chain; the estimate is
        the centre of that chain's cell, on the central axis."""
        loc = NomLocLocalizer(SQUARE)
        est = loc.locate(ideal_anchors(CORNERS, Point(5, 5)))
        assert est.position.x == pytest.approx(5.0, abs=0.1)
        assert est.error_to(Point(5, 5)) < 3.0


class TestNomadicDownscoping:
    def test_nomadic_sites_shrink_region(self):
        """Adding nomadic sites must not grow the feasible region."""
        loc = NomLocLocalizer(SQUARE)
        obj = Point(6.5, 3.5)
        base = loc.locate(ideal_anchors(CORNERS, obj))
        extended_positions = CORNERS + [Point(5, 3), Point(7, 5)]
        flags = [False] * 4 + [True, True]
        extended = loc.locate(ideal_anchors(extended_positions, obj, flags))
        assert base.region is not None and extended.region is not None
        assert extended.region.area() <= base.region.area() + 1e-9
        assert extended.error_to(obj) <= base.error_to(obj) + 0.5

    def test_paper_mode_excludes_site_pairs(self):
        cfg = LocalizerConfig(include_nomadic_pairs=False)
        loc = NomLocLocalizer(SQUARE, cfg)
        obj = Point(6.5, 3.5)
        positions = CORNERS + [Point(5, 3), Point(7, 5)]
        flags = [False] * 4 + [True, True]
        est = loc.locate(ideal_anchors(positions, obj, flags))
        # 6 static pairs + 2 sites x 4 statics + 4 boundary = 18 rows.
        assert est.num_constraints == 6 + 8 + 4


class TestWrongJudgements:
    def test_single_wrong_lowweight_judgement_recovered(self):
        """A low-confidence wrong row is sacrificed by the relaxation."""
        loc = NomLocLocalizer(SQUARE)
        obj = Point(2, 2)
        anchors = ideal_anchors(CORNERS, obj)
        # Corrupt: claim A2 (far corner) has slightly higher PDP than A1.
        a1, a2 = anchors[1], anchors[2]
        anchors[2] = Anchor(a2.name, a2.position, a1.pdp * 1.05)
        est = loc.locate(anchors)
        # Error grows but stays bounded; the estimate stays in the area.
        assert SQUARE.contains(est.position)
        assert est.error_to(obj) < 6.0


class TestNonConvexArea:
    L_SHAPE = Polygon.from_coords(
        [(0, 0), (20, 0), (20, 10), (10, 10), (10, 20), (0, 20)]
    )
    L_ANCHORS = [Point(1, 1), Point(19, 1), Point(19, 9), Point(1, 19)]

    def test_decomposed_into_pieces(self):
        loc = NomLocLocalizer(self.L_SHAPE)
        assert len(loc.pieces) == 2

    def test_estimate_stays_in_l_shape(self):
        loc = NomLocLocalizer(self.L_SHAPE)
        rng = np.random.default_rng(2)
        objs = self.L_SHAPE.sample_points(15, rng, margin=0.5)
        for obj in objs:
            est = loc.locate(ideal_anchors(self.L_ANCHORS, obj))
            # Estimate must not fall into the notch (outside the L).
            assert self.L_SHAPE.contains(est.position) or min(
                est.position.distance_to(v) for v in self.L_SHAPE.vertices
            ) < 1e-6

    def test_upper_arm_object_wins_upper_piece(self):
        loc = NomLocLocalizer(self.L_SHAPE)
        obj = Point(4, 16)
        est = loc.locate(ideal_anchors(self.L_ANCHORS, obj))
        assert est.error_to(obj) < 8.0
        assert est.position.y > 8.0  # clearly in the upper arm


class TestCenterMethods:
    @pytest.mark.parametrize(
        "method",
        [CenterMethod.CENTROID, CenterMethod.CHEBYSHEV, CenterMethod.ANALYTIC],
    )
    def test_all_methods_work_end_to_end(self, method):
        loc = NomLocLocalizer(SQUARE, LocalizerConfig(center_method=method))
        obj = Point(7, 3)
        est = loc.locate(ideal_anchors(CORNERS, obj))
        assert SQUARE.contains(est.position)
        assert est.error_to(obj) < 5.0


class TestDiagnostics:
    def test_estimate_fields(self):
        loc = NomLocLocalizer(SQUARE)
        est = loc.locate(ideal_anchors(CORNERS, Point(3, 3)))
        assert est.was_feasible
        assert len(est.pieces) == 1
        assert est.num_constraints == 6 + 4
        assert est.region is not None
        assert est.relaxation_cost == pytest.approx(0.0, abs=1e-8)

    def test_confidence_radius(self):
        import math

        loc = NomLocLocalizer(SQUARE)
        est = loc.locate(ideal_anchors(CORNERS, Point(3, 3)))
        assert est.region is not None
        expected = math.sqrt(est.region.area() / math.pi)
        assert est.confidence_radius_m == pytest.approx(expected)
        # More anchors shrink the self-reported uncertainty.
        dense = loc.locate(
            ideal_anchors(CORNERS + [Point(5, 5), Point(3, 0.5)], Point(3, 3))
        )
        assert dense.confidence_radius_m <= est.confidence_radius_m + 1e-9
