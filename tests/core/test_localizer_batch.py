"""Winner-only lazy geometry in the batched localizer.

``locate_batch`` only clips/centres the co-optimal winner pieces; losing
pieces get :class:`_LazyPieceSolution` stand-ins whose geometry
materializes through the scalar path on first access.  These tests pin
the laziness itself (losers really do skip the geometry), the
materialized values (bit-identical to the eager path), and the pickle
escape hatch (process pools must receive plain eager solutions).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LocalizerConfig,
    NomLocLocalizer,
    NomLocSystem,
    SystemConfig,
)
from repro.core.center import CenterMethod
from repro.core.localizer import PieceSolution, _LazyPieceSolution
from repro.environment import SCENARIOS, get_scenario


def gather_queries(name, count, seed=23, packets=6):
    """A scenario plus ``count`` deterministic anchor sets."""
    scenario = get_scenario(name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=packets))
    sites = scenario.test_sites
    queries = []
    for i in range(count):
        rng = np.random.default_rng(np.random.SeedSequence([seed, i]))
        queries.append(system.gather_anchors(sites[i % len(sites)], rng))
    return scenario, queries


def split_lazy(estimates):
    """(lazy, eager) piece solutions across a batch of estimates."""
    lazy, eager = [], []
    for est in estimates:
        for sol in est.pieces:
            (lazy if isinstance(sol, _LazyPieceSolution) else eager).append(sol)
    return lazy, eager


class TestWinnerOnlyLaziness:
    """Losers stay lazy until read; winners come back eager."""

    def test_losers_lazy_winners_eager(self):
        # "lobby" is the non-convex scenario (2 pieces), so queries where
        # one piece clearly wins leave the other as a lazy loser.
        scenario, queries = gather_queries("lobby", 6)
        localizer = NomLocLocalizer(scenario.plan.boundary)
        estimates = localizer.locate_batch(queries)
        lazy, eager = split_lazy(estimates)
        assert lazy, "expected at least one losing piece across 6 queries"
        assert eager, "every query must have an eager winner"
        tol = localizer.config.cost_merge_tolerance
        for est in estimates:
            best = min(sol.cost for sol in est.pieces)
            for sol in est.pieces:
                is_winner = sol.cost <= best + tol
                assert isinstance(sol, _LazyPieceSolution) == (not is_winner)
        # Losers have not run any geometry yet.
        for sol in lazy:
            assert sol._geometry is None

    def test_lazy_materialization_matches_scalar(self):
        scenario, queries = gather_queries("lobby", 6)
        localizer = NomLocLocalizer(scenario.plan.boundary)
        estimates = localizer.locate_batch(queries)
        for anchors, est in zip(queries, estimates):
            shared = localizer.build_shared_constraints(anchors)
            for sol in est.pieces:
                ref = localizer.solve_piece(sol.piece_index, shared)
                # First access triggers materialization for lazy losers.
                assert sol.center == ref.center
                if ref.region is None:
                    assert sol.region is None
                else:
                    assert [(p.x, p.y) for p in sol.region.vertices] == [
                        (p.x, p.y) for p in ref.region.vertices
                    ]
                if isinstance(sol, _LazyPieceSolution):
                    assert sol._geometry is not None  # cached after read

    def test_pickle_materializes_to_eager_solution(self):
        scenario, queries = gather_queries("lobby", 6)
        localizer = NomLocLocalizer(scenario.plan.boundary)
        estimates = localizer.locate_batch(queries)
        lazy, _ = split_lazy(estimates)
        assert lazy
        for sol in lazy:
            clone = pickle.loads(pickle.dumps(sol))
            assert type(clone) is PieceSolution  # the thunk never ships
            assert clone.piece_index == sol.piece_index
            assert clone.cost == sol.cost
            assert clone.center == sol.center
            if sol.region is None:
                assert clone.region is None
            else:
                assert [(p.x, p.y) for p in clone.region.vertices] == [
                    (p.x, p.y) for p in sol.region.vertices
                ]

    def test_solve_pieces_batch_matches_solve_piece(self):
        scenario, queries = gather_queries("lobby", 3)
        localizer = NomLocLocalizer(scenario.plan.boundary)
        indices = list(range(len(localizer.pieces)))
        for anchors in queries:
            shared = localizer.build_shared_constraints(anchors)
            batched = localizer.solve_pieces_batch(indices, shared)
            for index, sol in zip(indices, batched):
                ref = localizer.solve_piece(index, shared)
                assert sol.cost == ref.cost
                assert sol.center == ref.center


class TestLazyVsEagerEstimates:
    """locate_batch must be bit-identical to locate, per query, always."""

    @given(
        name=st.sampled_from(sorted(SCENARIOS)),
        method=st.sampled_from(list(CenterMethod)),
        seed=st.integers(min_value=0, max_value=10**4),
    )
    @settings(max_examples=12, deadline=None)
    def test_positions_bit_identical(self, name, method, seed):
        scenario, queries = gather_queries(name, 2, seed=seed)
        localizer = NomLocLocalizer(
            scenario.plan.boundary, LocalizerConfig(center_method=method)
        )
        batched = localizer.locate_batch(queries)
        for anchors, est in zip(queries, batched):
            scalar = localizer.locate(anchors)
            assert scalar.position == est.position
            assert scalar.relaxation_cost == est.relaxation_cost
            assert scalar.num_constraints == est.num_constraints
            if scalar.region is None:
                assert est.region is None
            else:
                assert [(p.x, p.y) for p in scalar.region.vertices] == [
                    (p.x, p.y) for p in est.region.vertices
                ]

    def test_empty_batch(self):
        scenario, _ = gather_queries("lab", 0)
        localizer = NomLocLocalizer(scenario.plan.boundary)
        assert localizer.locate_batch([]) == []

    def test_quality_weights_length_mismatch_rejected(self):
        scenario, queries = gather_queries("lab", 2)
        localizer = NomLocLocalizer(scenario.plan.boundary)
        with pytest.raises(ValueError, match="length must match"):
            localizer.locate_batch(queries, quality_weights=[None])
