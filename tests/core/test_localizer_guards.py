"""Explicit error guards on the localizer's merge path."""

import pytest

from repro.core import NomLocLocalizer
from repro.environment import get_scenario


@pytest.fixture
def localizer():
    return NomLocLocalizer(get_scenario("lab").plan.boundary)


class TestEstimateFromSolutionsGuard:
    def test_empty_solutions_raise_value_error(self, localizer):
        with pytest.raises(ValueError, match="at least one piece solution"):
            localizer.estimate_from_solutions([])

    def test_empty_solutions_error_survives_tracing(self, localizer):
        from repro import obs

        with obs.capture():
            with pytest.raises(ValueError):
                localizer.estimate_from_solutions([])
