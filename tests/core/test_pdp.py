"""Tests for PDP estimation and the confidence factor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import LinkSimulator
from repro.core import (
    confidence_factor,
    estimate_pdp,
    judge_proximity,
    proximity_confidence,
)
from repro.environment import FloorPlan
from repro.geometry import Point, Polygon

ratios = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)


class TestConfidenceFactor:
    """The paper's f must satisfy Eqs. 2-4."""

    def test_f_of_one_is_half(self):
        assert confidence_factor(1.0) == pytest.approx(0.5)

    def test_eq4_branches(self):
        assert confidence_factor(0.5) == pytest.approx(2 ** -0.5)
        assert confidence_factor(2.0) == pytest.approx(1 - 2 ** -0.5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            confidence_factor(0.0)
        with pytest.raises(ValueError):
            confidence_factor(-1.0)

    @given(ratios)
    @settings(max_examples=200)
    def test_eq2_reciprocal_identity(self, x):
        """f(x) + f(1/x) = 1 for all x > 0."""
        assert confidence_factor(x) + confidence_factor(1.0 / x) == pytest.approx(
            1.0, abs=1e-12
        )

    @given(ratios)
    def test_eq3_nonnegative(self, x):
        assert confidence_factor(x) >= 0.0

    @given(ratios, ratios)
    @settings(max_examples=100)
    def test_monotone_decreasing(self, a, b):
        lo, hi = sorted((a, b))
        if hi - lo < 1e-9:
            return
        assert confidence_factor(lo) >= confidence_factor(hi)

    def test_limits(self):
        assert confidence_factor(1e-6) == pytest.approx(1.0, abs=1e-5)
        assert confidence_factor(1e6) == pytest.approx(0.0, abs=1e-5)

    def test_continuous_at_one(self):
        eps = 1e-9
        assert confidence_factor(1 - eps) == pytest.approx(
            confidence_factor(1 + eps), abs=1e-6
        )


class TestProximityConfidence:
    def test_symmetric(self):
        assert proximity_confidence(3.0, 7.0) == proximity_confidence(7.0, 3.0)

    def test_range(self):
        assert proximity_confidence(5.0, 5.0) == pytest.approx(0.5)
        assert proximity_confidence(1e-6, 1.0) > 0.99

    def test_positive_required(self):
        with pytest.raises(ValueError):
            proximity_confidence(0.0, 1.0)

    @given(
        st.floats(min_value=1e-9, max_value=1e3),
        st.floats(min_value=1e-9, max_value=1e3),
    )
    @settings(max_examples=100)
    def test_in_half_one_interval(self, p, q):
        w = proximity_confidence(p, q)
        assert 0.5 <= w < 1.0 + 1e-12


class TestJudgeProximity:
    def test_larger_pdp_wins(self):
        j = judge_proximity([1.0, 3.0, 2.0], 0, 1)
        assert j.near_index == 1
        assert j.far_index == 0
        assert j.pdp_near == 3.0

    def test_tie_goes_to_first(self):
        j = judge_proximity([2.0, 2.0], 0, 1)
        assert j.near_index == 0
        assert j.confidence == pytest.approx(0.5)

    def test_self_comparison_rejected(self):
        with pytest.raises(ValueError):
            judge_proximity([1.0, 2.0], 1, 1)


class TestEstimatePDP:
    def test_requires_measurements(self):
        with pytest.raises(ValueError):
            estimate_pdp([])

    def test_average_of_max_tap_powers(self):
        plan = FloorPlan("room", Polygon.rectangle(0, 0, 10, 10))
        sim = LinkSimulator(plan)
        rng = np.random.default_rng(0)
        batch = sim.measure_batch(Point(2, 5), Point(8, 5), 20, rng)
        pdp = estimate_pdp(batch)
        from repro.channel import delay_profile

        expected = np.mean([delay_profile(m).max_power() for m in batch])
        assert pdp == pytest.approx(expected)

    def test_pdp_decreases_with_distance(self):
        """The core physical premise: larger PDP means closer (LOS)."""
        plan = FloorPlan("room", Polygon.rectangle(0, 0, 30, 10))
        sim = LinkSimulator(plan)
        rng = np.random.default_rng(1)
        tx = Point(1, 5)
        pdps = []
        for x in (3, 8, 15, 25):
            batch = sim.measure_batch(tx, Point(float(x), 5), 40, rng)
            pdps.append(estimate_pdp(batch))
        assert pdps == sorted(pdps, reverse=True)

    def test_nlos_pdp_below_los_at_same_distance(self):
        """NLOS crushes the PDP relative to an equal-length LOS link."""
        from repro.channel import METAL
        from repro.environment import Obstacle

        plan = FloorPlan(
            "blocked",
            Polygon.rectangle(0, 0, 20, 20),
            (),
            (Obstacle(Polygon.rectangle(9, 9, 11, 11), METAL, "blocker"),),
        )
        sim = LinkSimulator(plan)
        rng = np.random.default_rng(2)
        los = estimate_pdp(sim.measure_batch(Point(2, 2), Point(18, 2), 40, rng))
        nlos = estimate_pdp(sim.measure_batch(Point(2, 10), Point(18, 10), 40, rng))
        assert nlos < los

    def test_averaging_stabilizes(self):
        """More packets shrink the PDP estimator's spread."""
        plan = FloorPlan("room", Polygon.rectangle(0, 0, 10, 10))
        sim = LinkSimulator(plan)

        def spread(n_packets, seeds=20):
            vals = [
                estimate_pdp(
                    sim.measure_batch(
                        Point(2, 5), Point(8, 5), n_packets, np.random.default_rng(s)
                    )
                )
                for s in range(seeds)
            ]
            return np.std(vals) / np.mean(vals)

        assert spread(40) < spread(2)
