"""Batched PDP estimators vs their scalar references.

The batched estimators back the anchor-building fast path and the
``PROXIMITY_METRICS`` registry, so they must reproduce the scalar loops
bit-for-bit — including on batches that cannot be stacked (mixed OFDM
configs), where they fall back to the reference path.
"""

import numpy as np
import pytest

from repro.channel import (
    SPEED_OF_LIGHT,
    CSISynthesizer,
    OFDMConfig,
    PathComponent,
    PathKind,
)
from repro.core.pdp import (
    estimate_first_tap,
    estimate_first_tap_batch,
    estimate_pdp,
    estimate_pdp_batch,
    estimate_pdp_median,
)


def _paths():
    lengths = (7.0, 11.5, 16.0)
    kinds = (PathKind.DIRECT, PathKind.REFLECTED, PathKind.SCATTERED)
    return tuple(
        PathComponent(
            kind,
            length,
            length / SPEED_OF_LIGHT,
            2.0 * i,
            bounces=0 if kind is PathKind.DIRECT else 1,
        )
        for i, (kind, length) in enumerate(zip(kinds, lengths))
    )


def _measurements(packets=20, seed=9, **synth_overrides):
    synth = CSISynthesizer(**synth_overrides)
    return synth.synthesize_batch(
        _paths(), packets, np.random.default_rng(seed)
    )


class TestBatchEstimatorsBitExact:
    def test_pdp(self):
        ms = _measurements()
        assert estimate_pdp_batch(ms) == estimate_pdp(ms)

    def test_first_tap(self):
        ms = _measurements()
        assert estimate_first_tap_batch(ms) == estimate_first_tap(ms)

    def test_pdp_median(self):
        from repro.channel import delay_profile

        ms = _measurements(packets=21)
        reference = float(
            np.median([delay_profile(m).max_power() for m in ms])
        )
        assert estimate_pdp_median(ms) == reference

    def test_single_measurement(self):
        ms = _measurements(packets=1)
        assert estimate_pdp_batch(ms) == estimate_pdp(ms)

    def test_accepts_generators(self):
        ms = _measurements()
        assert estimate_pdp_batch(iter(ms)) == estimate_pdp(ms)


def _mixed_batch(packets=3):
    narrow = _measurements(packets=packets)
    wide = _measurements(
        packets=packets, ofdm=OFDMConfig(bandwidth_hz=40e6)
    )
    return narrow + wide


class TestMixedConfigFallback:
    def test_pdp_falls_back_to_scalar(self):
        ms = _mixed_batch()
        assert estimate_pdp_batch(ms) == estimate_pdp(ms)

    def test_first_tap_falls_back_to_scalar(self):
        ms = _mixed_batch()
        assert estimate_first_tap_batch(ms) == estimate_first_tap(ms)

    def test_median_falls_back_to_scalar(self):
        from repro.channel import delay_profile

        ms = _mixed_batch()
        reference = float(
            np.median([delay_profile(m).max_power() for m in ms])
        )
        assert estimate_pdp_median(ms) == reference


class TestBatchEstimatorEmptyGuards:
    @pytest.mark.parametrize(
        "estimator",
        [estimate_pdp_batch, estimate_first_tap_batch, estimate_pdp_median],
    )
    def test_empty_batch_rejected(self, estimator):
        with pytest.raises(ValueError, match="at least one CSI measurement"):
            estimator([])


class TestBatchExtraction:
    def test_cir_batch_rows_match_scalar(self):
        from repro.channel import csi_to_cir, csi_to_cir_batch

        ms = _measurements(packets=6)
        batch = csi_to_cir_batch(ms)
        for row, m in zip(batch, ms):
            assert np.array_equal(row, csi_to_cir(m))

    def test_delay_profile_batch_matches_scalar(self):
        from repro.channel import delay_profile, delay_profile_batch

        ms = _measurements(packets=6)
        for batched, m in zip(delay_profile_batch(ms), ms):
            scalar = delay_profile(m)
            assert np.array_equal(batched.delays_s, scalar.delays_s)
            assert np.array_equal(batched.amplitudes, scalar.amplitudes)

    def test_delay_profile_batch_empty_is_empty(self):
        from repro.channel import delay_profile_batch

        assert delay_profile_batch([]) == []

    def test_mixed_config_batch_rejected(self):
        from repro.channel import csi_to_cir_batch

        with pytest.raises(ValueError, match="share one OFDM config"):
            csi_to_cir_batch(_mixed_batch(packets=2))
