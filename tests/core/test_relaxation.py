"""Tests for the weighted relaxation LP (Eq. 19)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Anchor,
    ConstraintKind,
    ConstraintSystem,
    WeightedConstraint,
    boundary_constraints,
    pairwise_constraints,
    solve_relaxation,
)
from repro.geometry import HalfSpace, Point, Polygon


def wc(ax, ay, b, weight, label=""):
    return WeightedConstraint(
        HalfSpace(ax, ay, b), weight, ConstraintKind.PAIRWISE, label
    )


class TestFeasibleCase:
    def test_zero_cost_when_feasible(self):
        """Eq. 19 equals Eq. 16 when a feasible point exists."""
        system = ConstraintSystem(
            (
                wc(1, 0, 5, 1.0),
                wc(-1, 0, 0, 1.0),
                wc(0, 1, 5, 1.0),
                wc(0, -1, 0, 1.0),
            )
        )
        result = solve_relaxation(system)
        assert result.was_feasible
        assert result.cost == pytest.approx(0.0, abs=1e-8)
        np.testing.assert_allclose(result.slacks, 0.0, atol=1e-8)
        assert result.violated_labels() == []
        # The feasible point must satisfy the original constraints.
        a, b, _ = system.matrices()
        assert np.all(a @ result.feasible_point <= b + 1e-8)

    def test_relaxed_halfspaces_identical_when_feasible(self):
        system = ConstraintSystem((wc(1, 0, 5, 1.0), wc(-1, 0, 0, 1.0)))
        result = solve_relaxation(system)
        for orig, relaxed in zip(system.constraints, result.relaxed_halfspaces()):
            assert relaxed.b == pytest.approx(orig.halfspace.b, abs=1e-8)


class TestInfeasibleCase:
    def test_cheapest_constraint_sacrificed(self):
        """x <= 0 (weight 10) conflicts with x >= 2 (weight 1)."""
        system = ConstraintSystem(
            (
                wc(1, 0, 0, 10.0, "keep"),
                wc(-1, 0, -2, 1.0, "break"),
                wc(0, 1, 1, 5.0),
                wc(0, -1, 1, 5.0),
            )
        )
        result = solve_relaxation(system)
        assert not result.was_feasible
        assert result.violated_labels() == ["break"]
        # Slack on the broken row is the gap (2), cost = w * t = 2.
        assert result.cost == pytest.approx(2.0, abs=1e-6)
        assert result.slacks[1] == pytest.approx(2.0, abs=1e-6)

    def test_weight_ordering_decides_victim(self):
        """Swapping the weights swaps which constraint gets broken."""
        base = [
            (1, 0, 0),  # x <= 0
            (-1, 0, -2),  # x >= 2
        ]
        for w_first, expect in ((10.0, "second"), (0.1, "first")):
            system = ConstraintSystem(
                (
                    wc(*base[0], w_first, "first"),
                    wc(*base[1], 1.0, "second"),
                    wc(0, 1, 1, 50.0),
                    wc(0, -1, 1, 50.0),
                )
            )
            result = solve_relaxation(system)
            assert result.violated_labels() == [expect]

    def test_relaxed_region_nonempty(self):
        system = ConstraintSystem(
            (
                wc(1, 0, 0, 3.0),
                wc(-1, 0, -2, 1.0),
                wc(0, 1, 1, 3.0),
                wc(0, -1, 1, 3.0),
            )
        )
        result = solve_relaxation(system)
        relaxed = result.relaxed_halfspaces()
        z = Point(float(result.feasible_point[0]), float(result.feasible_point[1]))
        assert all(h.contains(z, tol=1e-6) for h in relaxed)

    def test_boundary_weight_protects_area(self):
        """A rogue high-PDP judgement cannot push z outside the boundary."""
        area = Polygon.rectangle(0, 0, 10, 10)
        # Wrong judgement: "closer to (50, 5) than (5, 5)" — outside pull.
        rogue = pairwise_constraints(
            [Anchor("far", Point(50, 5), 9.0), Anchor("near", Point(5, 5), 1.0)]
        )
        system = ConstraintSystem(
            tuple(rogue) + tuple(boundary_constraints(area))
        )
        result = solve_relaxation(system)
        z = result.feasible_point
        assert -1e-6 <= z[0] <= 10 + 1e-6
        assert -1e-6 <= z[1] <= 10 + 1e-6
        # The rogue row is the one relaxed, not the boundary.
        assert result.violated_labels() == ["far<near"]


class TestValidation:
    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            solve_relaxation(ConstraintSystem(()))


class TestRelaxationProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_cost_zero_iff_feasible_random_systems(self, seed):
        rng = np.random.default_rng(seed)
        n_rows = int(rng.integers(2, 8))
        rows = []
        for k in range(n_rows):
            ax, ay = rng.uniform(-1, 1, 2)
            if abs(ax) + abs(ay) < 0.1:
                ax = 1.0
            rows.append(
                wc(
                    ax,
                    ay,
                    float(rng.uniform(-3, 3)),
                    float(rng.uniform(0.1, 5)),
                    f"r{k}",
                )
            )
        # Bound the problem so the LP stays bounded.
        rows += [
            wc(1, 0, 50, 100.0),
            wc(-1, 0, 50, 100.0),
            wc(0, 1, 50, 100.0),
            wc(0, -1, 50, 100.0),
        ]
        system = ConstraintSystem(tuple(rows))
        result = solve_relaxation(system)
        a, b, _ = system.matrices()
        # Exact geometric feasibility check via clipping.
        from repro.geometry import intersect_halfspaces

        region = intersect_halfspaces(
            [c.halfspace for c in system.constraints],
            Polygon.rectangle(-60, -60, 60, 60),
        )
        if region is not None:
            assert result.cost <= 1e-5
        # Always: the relaxed solution satisfies the relaxed constraints.
        assert np.all(a @ result.feasible_point - result.slacks <= b + 1e-6)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_slacks_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        rows = [
            wc(
                float(np.cos(t)),
                float(np.sin(t)),
                float(rng.uniform(-2, 2)),
                float(rng.uniform(0.5, 2)),
            )
            for t in rng.uniform(0, 2 * np.pi, 6)
        ]
        result = solve_relaxation(ConstraintSystem(tuple(rows)))
        assert np.all(result.slacks >= -1e-9)
