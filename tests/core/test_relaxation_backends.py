"""Cross-checks between the simplex and sparse relaxation backends."""

import numpy as np
import pytest

from repro.core import ConstraintSystem, solve_relaxation
from repro.core.relaxation import _solve_relaxation_sparse
from repro.core.constraints import ConstraintKind, WeightedConstraint
from repro.geometry import HalfSpace


def random_system(seed: int, rows: int) -> ConstraintSystem:
    rng = np.random.default_rng(seed)
    constraints = []
    for k in range(rows):
        theta = rng.uniform(0, 2 * np.pi)
        constraints.append(
            WeightedConstraint(
                HalfSpace(
                    float(np.cos(theta)),
                    float(np.sin(theta)),
                    float(rng.uniform(-3, 5)),
                ),
                float(rng.uniform(0.5, 2.0)),
                ConstraintKind.PAIRWISE,
                label=f"r{k}",
            )
        )
    # Bound the problem.
    constraints += [
        WeightedConstraint(HalfSpace(1, 0, 50), 100.0, ConstraintKind.BOUNDARY),
        WeightedConstraint(HalfSpace(-1, 0, 50), 100.0, ConstraintKind.BOUNDARY),
        WeightedConstraint(HalfSpace(0, 1, 50), 100.0, ConstraintKind.BOUNDARY),
        WeightedConstraint(HalfSpace(0, -1, 50), 100.0, ConstraintKind.BOUNDARY),
    ]
    return ConstraintSystem(tuple(constraints))


class TestBackendConsistency:
    @pytest.mark.parametrize("seed", range(8))
    def test_same_optimal_cost(self, seed):
        """Both backends reach the same optimum (the LP is the same)."""
        system = random_system(seed, rows=20)
        a, b, w = system.matrices()
        dense = solve_relaxation(system)  # small -> simplex path
        sparse = _solve_relaxation_sparse(system, a, b, w)
        assert dense.cost == pytest.approx(sparse.cost, abs=1e-6)
        # Both solutions satisfy their own relaxed systems.
        for res in (dense, sparse):
            assert np.all(a @ res.feasible_point - res.slacks <= b + 1e-6)

    def test_large_system_routes_to_sparse_and_is_fast(self):
        import time

        system = random_system(99, rows=400)
        start = time.perf_counter()
        result = solve_relaxation(system)
        elapsed = time.perf_counter() - start
        assert result.slacks.shape == (len(system),)
        assert elapsed < 2.0  # the dense tableau would take far longer

    def test_feasible_large_system_zero_cost(self):
        rng = np.random.default_rng(5)
        constraints = []
        # All halfspaces contain the origin: jointly feasible.
        for k in range(200):
            theta = rng.uniform(0, 2 * np.pi)
            constraints.append(
                WeightedConstraint(
                    HalfSpace(
                        float(np.cos(theta)),
                        float(np.sin(theta)),
                        float(rng.uniform(0.5, 5.0)),
                    ),
                    1.0,
                    ConstraintKind.PAIRWISE,
                )
            )
        result = solve_relaxation(ConstraintSystem(tuple(constraints)))
        assert result.was_feasible
