"""Failure-injection and property tests on the SP localizer.

The localizer must degrade gracefully, never crash, and never escape the
venue, whatever the PDP measurements look like — they are, after all,
radio measurements.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Anchor, LocalizerConfig, NomLocLocalizer
from repro.geometry import Point, Polygon


SQUARE = Polygon.rectangle(0, 0, 10, 10)
L_SHAPE = Polygon.from_coords(
    [(0, 0), (20, 0), (20, 10), (10, 10), (10, 20), (0, 20)]
)
CORNERS = [Point(0.5, 0.5), Point(9.5, 0.5), Point(9.5, 9.5), Point(0.5, 9.5)]


def anchors_with_pdps(pdps, positions=None):
    positions = positions or CORNERS
    return [
        Anchor(f"A{i}", p, pdp)
        for i, (p, pdp) in enumerate(zip(positions, pdps))
    ]


class TestArbitraryPDPs:
    @given(
        st.lists(
            st.floats(min_value=1e-12, max_value=1e3),
            min_size=4,
            max_size=4,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_estimate_always_inside_square(self, pdps):
        loc = NomLocLocalizer(SQUARE)
        est = loc.locate(anchors_with_pdps(pdps))
        assert SQUARE.contains(est.position) or min(
            est.position.distance_to(v) for v in SQUARE.vertices
        ) < 1e-6

    @given(
        st.lists(
            st.floats(min_value=1e-12, max_value=1e3),
            min_size=4,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_l_shape_never_escapes(self, pdps):
        loc = NomLocLocalizer(L_SHAPE)
        positions = [Point(1, 1), Point(19, 1), Point(19, 9), Point(1, 19)]
        est = loc.locate(anchors_with_pdps(pdps, positions))
        assert L_SHAPE.contains(est.position) or min(
            est.position.distance_to(v) for v in L_SHAPE.vertices
        ) < 1e-6

    def test_equal_pdps_tie_break_is_deterministic_and_sane(self):
        """All-equal PDPs tie-break by index into a consistent ordering
        chain; the estimate is the centre of that (degenerate) cell."""
        loc = NomLocLocalizer(SQUARE)
        est = loc.locate(anchors_with_pdps([1.0, 1.0, 1.0, 1.0]))
        assert SQUARE.contains(est.position)
        # The tie chain pins x = 5 (A0<A1 gives x<=5, A2<A3 gives x>=5).
        assert est.position.x == pytest.approx(5.0, abs=0.1)
        again = loc.locate(anchors_with_pdps([1.0, 1.0, 1.0, 1.0]))
        assert est.position == again.position

    def test_extreme_disparity(self):
        """One anchor dominating by 10^9: the estimate is nearest to it."""
        loc = NomLocLocalizer(SQUARE)
        est = loc.locate(anchors_with_pdps([1e6, 1e-3, 1e-3, 1e-3]))
        d_winner = est.position.distance_to(CORNERS[0])
        for other in CORNERS[1:]:
            assert d_winner <= est.position.distance_to(other) + 1e-6


class TestAnchorDropout:
    def test_dropout_grows_region_but_stays_sane(self):
        loc = NomLocLocalizer(SQUARE)
        obj = Point(3, 3)
        full = [
            Anchor(f"A{i}", p, 1.0 / (0.1 + obj.distance_to(p)) ** 2)
            for i, p in enumerate(CORNERS)
        ]
        est_full = loc.locate(full)
        est_drop = loc.locate(full[:-1])  # one AP dies
        assert est_full.region is not None and est_drop.region is not None
        assert est_drop.region.area() >= est_full.region.area() - 1e-9
        assert SQUARE.contains(est_drop.position)

    def test_two_anchor_minimum(self):
        loc = NomLocLocalizer(SQUARE)
        est = loc.locate(
            [Anchor("A", Point(1, 5), 2.0), Anchor("B", Point(9, 5), 1.0)]
        )
        # Two anchors: one bisector; estimate in A's halfplane.
        assert est.position.x < 5.0
        assert SQUARE.contains(est.position)


class TestCollinearAnchors:
    def test_collinear_deployment_works(self):
        """Anchors on one line only resolve the along-line coordinate."""
        loc = NomLocLocalizer(SQUARE)
        line = [Point(1, 5), Point(4, 5), Point(7, 5), Point(9.5, 5)]
        obj = Point(4.2, 5.0)
        anchors = [
            Anchor(f"A{i}", p, 1.0 / (0.1 + obj.distance_to(p)) ** 2)
            for i, p in enumerate(line)
        ]
        est = loc.locate(anchors)
        assert abs(est.position.x - obj.x) < 2.0
        assert SQUARE.contains(est.position)


class TestWeightSemantics:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_relaxation_cost_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        loc = NomLocLocalizer(SQUARE)
        pdps = rng.uniform(1e-8, 1e-3, 4)
        est = loc.locate(anchors_with_pdps(list(pdps)))
        assert est.relaxation_cost >= -1e-9

    def test_boundary_never_sacrificed_for_pairwise(self):
        """Even absurd PDPs cannot push the estimate outside."""
        loc = NomLocLocalizer(SQUARE, LocalizerConfig())
        outside_pull = [
            Anchor("far", Point(9.9, 9.9), 1e3),
            Anchor("a", Point(0.5, 0.5), 1e-9),
            Anchor("b", Point(5.0, 0.5), 1e-9),
        ]
        est = loc.locate(outside_pull)
        assert SQUARE.contains(est.position)
