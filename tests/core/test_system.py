"""Integration tests for the end-to-end NomLoc system."""

import numpy as np
import pytest

from repro.core import LocalizerConfig, NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.mobility import PositionErrorModel, StaticPattern, SweepPattern


@pytest.fixture(scope="module")
def lab():
    return get_scenario("lab")


@pytest.fixture(scope="module")
def lab_system(lab):
    return NomLocSystem(lab, SystemConfig(packets_per_link=10, trace_steps=8))


class TestSystemConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(packets_per_link=0)
        with pytest.raises(ValueError):
            SystemConfig(trace_steps=0)

    def test_with_error_range(self):
        cfg = SystemConfig().with_error_range(2.0)
        assert cfg.position_error.error_range_m == 2.0
        # Other fields preserved.
        assert cfg.packets_per_link == SystemConfig().packets_per_link

    def test_device_offsets_validation(self, lab):
        with pytest.raises(ValueError):
            NomLocSystem(lab, device_offsets_db={"AP9": 3.0})

    def test_device_offsets_scale_pdps(self, lab):
        nominal = NomLocSystem(lab, SystemConfig(packets_per_link=5))
        hot = NomLocSystem(
            lab,
            SystemConfig(packets_per_link=5),
            device_offsets_db={"AP2": 10.0},
        )
        site = lab.test_sites[0]
        a_nom = {
            a.name: a.pdp
            for a in nominal.gather_anchors(site, np.random.default_rng(3))
        }
        a_hot = {
            a.name: a.pdp
            for a in hot.gather_anchors(site, np.random.default_rng(3))
        }
        assert a_hot["AP2"] == pytest.approx(10.0 * a_nom["AP2"])
        assert a_hot["AP3"] == pytest.approx(a_nom["AP3"])

    def test_nomadic_offset_follows_device(self, lab):
        system = NomLocSystem(
            lab,
            SystemConfig(packets_per_link=5),
            device_offsets_db={"AP1": 6.0},
        )
        base = NomLocSystem(lab, SystemConfig(packets_per_link=5))
        site = lab.test_sites[0]
        hot = {
            a.name: a.pdp
            for a in system.gather_anchors(site, np.random.default_rng(4))
        }
        nom = {
            a.name: a.pdp
            for a in base.gather_anchors(site, np.random.default_rng(4))
        }
        gain = 10 ** 0.6
        for name in hot:
            if name.startswith("AP1@"):
                assert hot[name] == pytest.approx(gain * nom[name])

    def test_proximity_metric_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(proximity_metric="snr")
        from repro.core import estimate_rss

        assert SystemConfig(proximity_metric="rss").resolve_metric() is estimate_rss


class TestGatherAnchors:
    def test_nomadic_mode_anchor_set(self, lab, lab_system):
        rng = np.random.default_rng(0)
        anchors = lab_system.gather_anchors(lab.test_sites[0], rng)
        static_names = {a.name for a in anchors if not a.nomadic}
        assert static_names == {"AP2", "AP3", "AP4"}
        nomadic = [a for a in anchors if a.nomadic]
        assert 1 <= len(nomadic) <= 4
        assert all(a.name.startswith("AP1@s") for a in nomadic)
        assert all(a.pdp > 0 for a in anchors)

    def test_static_mode_anchor_set(self, lab):
        system = NomLocSystem(
            lab, SystemConfig(packets_per_link=5, use_nomadic=False)
        )
        rng = np.random.default_rng(0)
        anchors = system.gather_anchors(lab.test_sites[0], rng)
        assert len(anchors) == 4
        assert not any(a.nomadic for a in anchors)
        assert {a.name for a in anchors} == {"AP1", "AP2", "AP3", "AP4"}

    def test_position_error_applied_to_reports(self, lab):
        system = NomLocSystem(
            lab,
            SystemConfig(
                packets_per_link=5,
                position_error=PositionErrorModel(2.0),
            ),
        )
        rng = np.random.default_rng(3)
        anchors = system.gather_anchors(lab.test_sites[0], rng)
        nomadic = [a for a in anchors if a.nomadic]
        sites = set(lab.nomadic_aps[0].sites)
        # With ER = 2 m, reported positions differ from every true site.
        assert any(a.position not in sites for a in nomadic)

    def test_pattern_override(self, lab):
        system = NomLocSystem(lab, SystemConfig(packets_per_link=5, trace_steps=4))
        rng = np.random.default_rng(0)
        pattern = StaticPattern(4, home=0)
        anchors = system.gather_anchors(lab.test_sites[0], rng, pattern)
        nomadic = [a for a in anchors if a.nomadic]
        assert len(nomadic) == 1  # never left home
        sweep = SweepPattern(4)
        anchors = system.gather_anchors(lab.test_sites[0], rng, sweep)
        assert len([a for a in anchors if a.nomadic]) == 4  # visited all


class TestLocate:
    def test_estimate_inside_venue(self, lab, lab_system):
        rng = np.random.default_rng(1)
        for site in lab.test_sites[:3]:
            est = lab_system.locate(site, rng)
            assert lab.plan.contains(est.position)

    def test_error_reasonable(self, lab, lab_system):
        rng = np.random.default_rng(2)
        errors = [
            lab_system.localization_error(site, rng)
            for site in lab.test_sites[:5]
        ]
        # Meter-scale accuracy, venue diagonal is ~14.4 m.
        assert np.mean(errors) < 5.0

    def test_reproducible(self, lab):
        system = NomLocSystem(lab, SystemConfig(packets_per_link=5))
        site = lab.test_sites[0]
        e1 = system.locate(site, np.random.default_rng(7))
        e2 = system.locate(site, np.random.default_rng(7))
        assert e1.position == e2.position

    def test_locate_from_anchors(self, lab, lab_system):
        rng = np.random.default_rng(4)
        anchors = lab_system.gather_anchors(lab.test_sites[1], rng)
        est = lab_system.locate_from_anchors(anchors)
        assert lab.plan.contains(est.position)


class TestLobbyIntegration:
    def test_l_shape_estimates_inside(self):
        lobby = get_scenario("lobby")
        system = NomLocSystem(lobby, SystemConfig(packets_per_link=8, trace_steps=8))
        rng = np.random.default_rng(5)
        for site in lobby.test_sites[::3]:
            est = system.locate(site, rng)
            assert lobby.plan.contains(est.position)

    def test_custom_localizer_config(self):
        lobby = get_scenario("lobby")
        from repro.core import CenterMethod

        system = NomLocSystem(
            lobby,
            SystemConfig(packets_per_link=5),
            LocalizerConfig(center_method=CenterMethod.CHEBYSHEV),
        )
        rng = np.random.default_rng(6)
        est = system.locate(lobby.test_sites[0], rng)
        assert lobby.plan.contains(est.position)
