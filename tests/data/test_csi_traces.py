"""Tests for raw CSI trace persistence."""

import numpy as np
import pytest

from repro.channel import LinkSimulator, OFDMConfig
from repro.data import load_csi_batch, save_csi_batch
from repro.environment import FloorPlan
from repro.geometry import Point, Polygon


@pytest.fixture
def batch():
    plan = FloorPlan("room", Polygon.rectangle(0, 0, 10, 10))
    sim = LinkSimulator(plan)
    rng = np.random.default_rng(0)
    return sim.measure_batch(Point(1, 1), Point(8, 8), 12, rng)


class TestCSITraces:
    def test_roundtrip_lossless(self, batch, tmp_path):
        path = tmp_path / "trace.npz"
        save_csi_batch(path, batch)
        loaded = load_csi_batch(path)
        assert len(loaded) == len(batch)
        for orig, back in zip(batch, loaded):
            np.testing.assert_array_equal(orig.csi, back.csi)
            assert back.config.n_fft == orig.config.n_fft
            assert back.config.active_subcarriers == orig.config.active_subcarriers

    def test_empty_batch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_csi_batch(tmp_path / "x.npz", [])

    def test_mixed_configs_rejected(self, batch, tmp_path):
        from repro.channel import CSIMeasurement

        other_cfg = OFDMConfig(active_subcarriers=(-1, 1))
        odd = CSIMeasurement(np.ones(2, dtype=complex), other_cfg)
        with pytest.raises(ValueError):
            save_csi_batch(tmp_path / "x.npz", list(batch) + [odd])

    def test_pdp_preserved_through_roundtrip(self, batch, tmp_path):
        """Derived quantities survive persistence."""
        from repro.core import estimate_pdp

        path = tmp_path / "trace.npz"
        save_csi_batch(path, batch)
        assert estimate_pdp(load_csi_batch(path)) == pytest.approx(
            estimate_pdp(batch)
        )
