"""Tests for dataset recording, persistence, and replay."""

import numpy as np
import pytest

from repro.core import (
    CenterMethod,
    LocalizerConfig,
    NomLocSystem,
    SystemConfig,
)
from repro.data import (
    AnchorRecord,
    Dataset,
    QueryRecord,
    record_dataset,
    replay_dataset,
)
from repro.environment import get_scenario
from repro.geometry import Point


@pytest.fixture(scope="module")
def small_dataset():
    scen = get_scenario("lab")
    system = NomLocSystem(scen, SystemConfig(packets_per_link=6, trace_steps=8))
    return record_dataset(system, repetitions=1, seed=3, sites=scen.test_sites[:4])


class TestRecords:
    def test_anchor_roundtrip(self):
        from repro.core import Anchor

        a = Anchor("AP1@s2", Point(1.5, 2.5), 3.5e-5, nomadic=True)
        rec = AnchorRecord.from_anchor(a)
        back = rec.to_anchor()
        assert back.name == a.name
        assert back.position == a.position
        assert back.pdp == a.pdp
        assert back.nomadic == a.nomadic

    def test_query_needs_anchors(self):
        with pytest.raises(ValueError):
            QueryRecord(1.0, 2.0, (AnchorRecord("A", 0, 0, 1.0, False),))


class TestDataset:
    def test_record_shape(self, small_dataset):
        assert small_dataset.scenario_name == "lab"
        assert len(small_dataset) == 4
        for q in small_dataset.queries:
            assert len(q.anchors) >= 4
            assert any(a.nomadic for a in q.anchors)

    def test_needs_queries(self):
        with pytest.raises(ValueError):
            Dataset("lab", ())

    def test_json_roundtrip(self, small_dataset):
        text = small_dataset.to_json()
        back = Dataset.from_json(text)
        assert back.scenario_name == small_dataset.scenario_name
        assert len(back) == len(small_dataset)
        assert back.queries == small_dataset.queries
        assert back.metadata["seed"] == 3

    def test_file_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "campaign.json"
        small_dataset.save(path)
        back = Dataset.load(path)
        assert back.queries == small_dataset.queries

    def test_version_check(self):
        with pytest.raises(ValueError):
            Dataset.from_json('{"format_version": 99, "queries": []}')

    def test_record_validation(self):
        scen = get_scenario("lab")
        system = NomLocSystem(scen, SystemConfig(packets_per_link=5))
        with pytest.raises(ValueError):
            record_dataset(system, repetitions=0)

    def test_record_reproducible(self):
        scen = get_scenario("lab")
        system = NomLocSystem(scen, SystemConfig(packets_per_link=5))
        d1 = record_dataset(system, seed=9, sites=scen.test_sites[:2])
        d2 = record_dataset(system, seed=9, sites=scen.test_sites[:2])
        assert d1.queries == d2.queries


class TestReplay:
    def test_replay_errors(self, small_dataset):
        errors = replay_dataset(small_dataset)
        assert len(errors) == len(small_dataset)
        assert all(e >= 0 for e in errors)
        assert np.mean(errors) < 6.0

    def test_replay_is_deterministic(self, small_dataset):
        assert replay_dataset(small_dataset) == replay_dataset(small_dataset)

    def test_replay_with_different_config(self, small_dataset):
        """The whole point: iterate the solver offline on fixed traces."""
        default = replay_dataset(small_dataset)
        chebyshev = replay_dataset(
            small_dataset,
            LocalizerConfig(center_method=CenterMethod.CHEBYSHEV),
        )
        paper_literal = replay_dataset(
            small_dataset, LocalizerConfig(include_nomadic_pairs=False)
        )
        assert len(default) == len(chebyshev) == len(paper_literal)
        # Configs genuinely change behaviour on at least one query.
        assert default != paper_literal or default != chebyshev

    def test_replay_matches_online(self):
        """Replaying a recording reproduces the online estimates."""
        scen = get_scenario("lab")
        system = NomLocSystem(scen, SystemConfig(packets_per_link=6))
        site = scen.test_sites[1]
        rng = np.random.default_rng(np.random.SeedSequence([5, 0, 0]))
        anchors = system.gather_anchors(site, rng)
        online = system.locate_from_anchors(anchors).error_to(site)
        dataset = record_dataset(system, seed=5, sites=(site,))
        offline = replay_dataset(dataset)[0]
        assert offline == pytest.approx(online, abs=1e-9)
