"""Tests for floor plans."""

import pytest

from repro.channel import CONCRETE, DRYWALL, METAL
from repro.environment import FloorPlan, Obstacle, Wall
from repro.geometry import Point, Polygon, Segment


@pytest.fixture
def plan():
    boundary = Polygon.rectangle(0, 0, 10, 8)
    walls = (Wall(Segment(Point(5, 0), Point(5, 5)), DRYWALL),)
    obstacles = (Obstacle(Polygon.rectangle(7, 6, 9, 7), METAL, "rack"),)
    return FloorPlan("test", boundary, walls, obstacles)


class TestFloorPlan:
    def test_obstacle_outside_rejected(self):
        boundary = Polygon.rectangle(0, 0, 5, 5)
        bad = Obstacle(Polygon.rectangle(4, 4, 7, 7), METAL)
        with pytest.raises(ValueError):
            FloorPlan("bad", boundary, (), (bad,))

    def test_reflective_walls_include_boundary(self, plan):
        walls = plan.reflective_walls()
        assert len(walls) == 4 + 1
        assert sum(w.material is CONCRETE for w in walls) == 4

    def test_blocking_walls(self, plan):
        crossing = Segment(Point(2, 3), Point(8, 3))
        clear = Segment(Point(2, 7), Point(4.5, 7))
        assert len(plan.blocking_walls(crossing)) == 1
        assert plan.blocking_walls(clear) == []

    def test_blocking_obstacles(self, plan):
        through = Segment(Point(6, 6.5), Point(10, 6.5))
        assert len(plan.blocking_obstacles(through)) == 1

    def test_is_los(self, plan):
        assert plan.is_los(Point(1, 7), Point(4, 7))
        assert not plan.is_los(Point(2, 3), Point(8, 3))  # wall
        assert not plan.is_los(Point(6, 6.5), Point(9.5, 6.5))  # rack

    def test_penetration_loss(self, plan):
        through_both = Segment(Point(2, 3), Point(8.5, 6.8))
        loss = plan.penetration_loss_db(through_both)
        assert loss >= DRYWALL.penetration_loss_db

    def test_contains(self, plan):
        assert plan.contains(Point(1, 1))
        assert not plan.contains(Point(11, 1))

    def test_convex_pieces_of_rectangle(self, plan):
        assert len(plan.convex_pieces()) == 1

    def test_clutter_density(self, plan):
        expected = 2.0 / 80.0
        assert plan.clutter_density() == pytest.approx(expected)

    def test_wall_blocks(self):
        w = Wall(Segment(Point(0, 0), Point(0, 10)))
        assert w.blocks(Segment(Point(-1, 5), Point(1, 5)))
        assert not w.blocks(Segment(Point(1, 5), Point(2, 5)))

    def test_obstacle_scatter_point(self):
        o = Obstacle(Polygon.rectangle(0, 0, 2, 2), METAL)
        assert o.scatter_point().almost_equals(Point(1, 1))
