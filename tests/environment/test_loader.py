"""Tests for scenario JSON serialization."""

import json

import pytest

from repro.environment import (
    build_lab,
    build_lobby,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [build_lab, build_lobby])
    def test_builtin_scenarios_roundtrip(self, factory):
        original = factory()
        back = scenario_from_dict(scenario_to_dict(original))
        assert back.name == original.name
        assert back.path_loss_exponent == original.path_loss_exponent
        assert back.test_sites == original.test_sites
        assert back.plan.boundary.vertices == original.plan.boundary.vertices
        assert len(back.plan.walls) == len(original.plan.walls)
        assert len(back.plan.obstacles) == len(original.plan.obstacles)
        for a, b in zip(back.aps, original.aps):
            assert a.name == b.name
            assert a.position == b.position
            assert a.nomadic == b.nomadic
            assert a.sites == b.sites

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "lab.json"
        save_scenario(build_lab(), path)
        back = load_scenario(path)
        assert back.name == "lab"
        assert len(back.aps) == 4

    def test_materials_preserved(self):
        lab = build_lab()
        back = scenario_from_dict(scenario_to_dict(lab))
        assert [o.material.name for o in back.plan.obstacles] == [
            o.material.name for o in lab.plan.obstacles
        ]
        assert back.plan.boundary_material.name == "concrete"

    def test_loaded_scenario_is_usable(self, tmp_path):
        """A reloaded scenario drives the full system."""
        import numpy as np

        from repro.core import NomLocSystem, SystemConfig

        path = tmp_path / "lab.json"
        save_scenario(build_lab(), path)
        scenario = load_scenario(path)
        system = NomLocSystem(scenario, SystemConfig(packets_per_link=5))
        err = system.localization_error(
            scenario.test_sites[0], np.random.default_rng(0)
        )
        assert 0 <= err < 10


class TestValidation:
    def test_version_check(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"format_version": 99})

    def test_unknown_material(self):
        doc = scenario_to_dict(build_lab())
        doc["plan"]["obstacles"][0]["material"] = "vibranium"
        with pytest.raises(ValueError):
            scenario_from_dict(doc)

    def test_constructor_validation_applies(self):
        """Bad geometry in the document is caught by Scenario checks."""
        doc = scenario_to_dict(build_lab())
        doc["test_sites"].append([999.0, 999.0])
        with pytest.raises(ValueError):
            scenario_from_dict(doc)

    def test_json_is_stable(self, tmp_path):
        """Serialization is deterministic (sorted keys, fixed layout)."""
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        save_scenario(build_lab(), p1)
        save_scenario(build_lab(), p2)
        assert p1.read_text() == p2.read_text()
        json.loads(p1.read_text())  # valid JSON
