"""Tests for the Lab and Lobby scenarios."""

import pytest

from repro.environment import APSpec, Scenario, build_lab, build_lobby, get_scenario
from repro.geometry import Point, Polygon


class TestAPSpec:
    def test_nomadic_needs_sites(self):
        with pytest.raises(ValueError):
            APSpec("AP1", Point(0, 0), nomadic=True, sites=(Point(0, 0),))

    def test_static_must_not_have_sites(self):
        with pytest.raises(ValueError):
            APSpec("AP1", Point(0, 0), sites=(Point(1, 1), Point(2, 2)))

    def test_all_sites(self):
        static = APSpec("A", Point(1, 2))
        assert static.all_sites() == (Point(1, 2),)
        nomadic = APSpec(
            "B", Point(0, 0), nomadic=True, sites=(Point(0, 0), Point(1, 1))
        )
        assert len(nomadic.all_sites()) == 2


class TestScenarioValidation:
    def test_sites_must_be_inside(self):
        from repro.environment import FloorPlan

        plan = FloorPlan("p", Polygon.rectangle(0, 0, 5, 5))
        with pytest.raises(ValueError):
            Scenario(
                "bad",
                plan,
                (APSpec("AP1", Point(10, 10)),),
                (Point(1, 1),),
                2.0,
            )
        with pytest.raises(ValueError):
            Scenario(
                "bad",
                plan,
                (APSpec("AP1", Point(1, 1)),),
                (Point(10, 10),),
                2.0,
            )

    def test_duplicate_names_rejected(self):
        from repro.environment import FloorPlan

        plan = FloorPlan("p", Polygon.rectangle(0, 0, 5, 5))
        with pytest.raises(ValueError):
            Scenario(
                "bad",
                plan,
                (APSpec("AP1", Point(1, 1)), APSpec("AP1", Point(2, 2))),
                (Point(1, 2),),
                2.0,
            )


class TestLabScenario:
    def test_shape_matches_paper(self):
        lab = build_lab()
        assert len(lab.aps) == 4
        assert len(lab.nomadic_aps) == 1
        assert lab.nomadic_aps[0].name == "AP1"
        # Home + {P1, P2, P3}.
        assert len(lab.nomadic_aps[0].sites) == 4
        assert len(lab.test_sites) == 10  # Fig. 7 Lab has 10 position indices

    def test_lab_is_cluttered(self):
        lab = build_lab()
        assert lab.plan.clutter_density() > 0.08

    def test_lab_has_nlos_links(self):
        """Clutter must create NLOS AP-site pairs (the paper's premise)."""
        lab = build_lab()
        nlos = sum(
            not lab.plan.is_los(ap.position, site)
            for ap in lab.aps
            for site in lab.test_sites
        )
        assert nlos >= 5

    def test_boundary_convex(self):
        assert len(build_lab().plan.convex_pieces()) == 1


class TestLobbyScenario:
    def test_shape_matches_paper(self):
        lobby = build_lobby()
        assert len(lobby.aps) == 4
        assert len(lobby.nomadic_aps) == 1
        assert len(lobby.test_sites) == 12  # Fig. 7 Lobby has 12 indices

    def test_l_shape_non_convex(self):
        lobby = build_lobby()
        assert not lobby.plan.boundary.is_convex()
        pieces = lobby.plan.convex_pieces()
        assert len(pieces) == 2

    def test_lobby_more_open_than_lab(self):
        assert build_lobby().plan.clutter_density() < build_lab().plan.clutter_density()

    def test_lobby_larger_than_lab(self):
        assert build_lobby().plan.boundary.area() > build_lab().plan.boundary.area()

    def test_sparser_ap_deployment(self):
        """Mean AP separation is larger in the Lobby (paper Sec. V-C)."""

        def mean_sep(scen):
            aps = [ap.position for ap in scen.aps]
            seps = [
                a.distance_to(b) for i, a in enumerate(aps) for b in aps[i + 1 :]
            ]
            return sum(seps) / len(seps)

        assert mean_sep(build_lobby()) > mean_sep(build_lab())


class TestOfficeScenario:
    def test_shape(self):
        from repro.environment import build_office

        office = build_office()
        assert len(office.aps) == 4
        assert len(office.nomadic_aps) == 1
        assert len(office.nomadic_aps[0].sites) == 4
        assert len(office.test_sites) == 11

    def test_wall_dominated(self):
        """The office is the wall-heavy regime: most links are NLOS and
        clutter is light."""
        from repro.environment import build_lab, build_office

        office = build_office()
        nlos = sum(
            not office.plan.is_los(ap.position, site)
            for ap in office.aps
            for site in office.test_sites
        )
        total = len(office.aps) * len(office.test_sites)
        assert nlos / total > 0.5
        assert office.plan.clutter_density() < build_lab().plan.clutter_density()
        assert len(office.plan.walls) > 10

    def test_corridor_sites_clear_of_walls(self):
        from repro.environment import build_office

        office = build_office()
        nomadic = office.nomadic_aps[0]
        # The corridor walk is LOS between consecutive sites.
        for a, b in zip(nomadic.sites, nomadic.sites[1:]):
            assert office.plan.is_los(a, b)

    def test_nomadic_beats_static(self):
        """The headline effect holds in the third venue too."""
        import numpy as np

        from repro.core import NomLocSystem, SystemConfig
        from repro.environment import build_office

        office = build_office()
        nom = NomLocSystem(office, SystemConfig(packets_per_link=8))
        sta = NomLocSystem(
            office, SystemConfig(packets_per_link=8, use_nomadic=False)
        )
        nom_errs, sta_errs = [], []
        for i, site in enumerate(office.test_sites):
            rng = np.random.default_rng(i)
            nom_errs.append(nom.localization_error(site, np.random.default_rng(i)))
            sta_errs.append(sta.localization_error(site, np.random.default_rng(i)))
        assert np.mean(nom_errs) < np.mean(sta_errs)


class TestStaticVariant:
    def test_pins_nomadic_aps(self):
        lab = build_lab()
        static = lab.static_variant()
        assert not static.nomadic_aps
        ap1 = next(ap for ap in static.aps if ap.name == "AP1")
        assert ap1.position == lab.nomadic_aps[0].position

    def test_name_suffix(self):
        assert build_lab().static_variant().name == "lab-static"


class TestDenseSites:
    def test_grid_properties(self):
        lab = build_lab()
        sites = lab.dense_sites(1.0)
        assert len(sites) > 50
        for p in sites:
            assert lab.plan.contains(p)
            for o in lab.plan.obstacles:
                assert not o.polygon.contains(p, boundary=False)

    def test_finer_spacing_more_sites(self):
        lab = build_lab()
        assert len(lab.dense_sites(0.5)) > len(lab.dense_sites(2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_lab().dense_sites(0.0)

    def test_l_shape_notch_excluded(self):
        lobby = build_lobby()
        for p in lobby.dense_sites(2.0):
            # Nothing in the removed quadrant of the L.
            assert not (p.x > 12.5 and p.y > 10.5)


class TestRegistry:
    def test_lookup(self):
        assert get_scenario("lab").name == "lab"
        assert get_scenario("lobby").name == "lobby"

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_scenario("warehouse")

    def test_fresh_instances(self):
        assert get_scenario("lab") is not get_scenario("lab")
