"""Integration tests for the paper-experiment suite (small workloads).

These check plumbing and the paper's qualitative shape at reduced sizes;
the benchmark harness runs the full-size versions.
"""

import pytest

from repro.eval import (
    EXTRA_LAB_SITES,
    ExperimentConfig,
    ablation_center_methods,
    ablation_nomadic_pairs,
    ablation_site_count,
    baseline_comparison,
    ext_mobility_patterns,
    ext_multi_nomadic,
    fig3_delay_profiles,
    fig7_pdp_accuracy,
    fig8_slv,
    fig9_error_cdf,
    fig10_position_error,
)

TINY = ExperimentConfig(repetitions=1, packets_per_link=6, trace_steps=8, seed=0)


class TestFig3:
    def test_los_nlos_dichotomy(self):
        result = fig3_delay_profiles(TINY, packets=20)
        # The paper's observation: blocked direct path => weak first tap.
        assert result.first_tap_ratio() < 0.7
        assert result.los_profile.delays_s.max() <= 1.5e-6 + 1e-12
        assert len(result.los_profile.delays_s) == len(
            result.nlos_profile.delays_s
        )

    def test_links_really_are_los_nlos(self):
        from repro.environment import get_scenario

        result = fig3_delay_profiles(TINY, packets=5)
        plan = get_scenario("lab").plan
        assert plan.is_los(*result.los_link)
        assert not plan.is_los(*result.nlos_link)


class TestFig7:
    def test_site_counts(self):
        lab = fig7_pdp_accuracy("lab", TINY, rounds=3)
        lobby = fig7_pdp_accuracy("lobby", TINY, rounds=3)
        assert len(lab.site_accuracies) == 10
        assert len(lobby.site_accuracies) == 12
        assert all(0 <= a <= 1 for a in lab.site_accuracies)

    def test_accuracy_well_above_chance(self):
        result = fig7_pdp_accuracy("lobby", TINY, rounds=3)
        assert result.mean_accuracy > 0.7

    def test_fraction_above(self):
        result = fig7_pdp_accuracy("lab", TINY, rounds=2)
        assert 0 <= result.fraction_above(0.85) <= 1


class TestFig8:
    def test_structure(self):
        result = fig8_slv(TINY, scenario_names=("lab",))
        assert set(result.slv) == {"lab"}
        assert set(result.slv["lab"]) == {"static", "nomadic"}
        assert result.slv["lab"]["static"] >= 0
        assert isinstance(result.reduction("lab"), float)


class TestFig9:
    def test_structure(self):
        result = fig9_error_cdf("lab", TINY)
        assert result.scenario == "lab"
        assert result.static_cdf.samples.shape == (10,)
        assert result.nomadic_cdf.samples.shape == (10,)


class TestFig10:
    def test_er_sweep(self):
        result = fig10_position_error("lab", TINY, error_ranges=(0.0, 2.0))
        assert set(result.cdfs) == {0.0, 2.0}
        assert result.mean_at(0.0) > 0
        assert isinstance(result.degradation(2.0), float)


class TestAblations:
    def test_center_methods(self):
        out = ablation_center_methods("lab", TINY)
        assert set(out) == {"centroid", "chebyshev", "analytic"}
        assert all(s.mean > 0 for s in out.values())

    def test_site_count(self):
        out = ablation_site_count(TINY, site_counts=(0, 2, 4))
        assert set(out) == {0, 2, 4}

    def test_site_count_validation(self):
        with pytest.raises(ValueError):
            ablation_site_count(TINY, site_counts=(99,))
        assert len(EXTRA_LAB_SITES) == 3

    def test_nomadic_pairs(self):
        out = ablation_nomadic_pairs(TINY, scenario_names=("lab",))
        assert set(out["lab"]) == {"paper-literal", "generalized"}

    def test_proximity_metric(self):
        from repro.eval import ablation_proximity_metric

        out = ablation_proximity_metric("lab", TINY)
        assert set(out) == {"pdp", "pdp_median", "rss", "first_tap"}

    def test_bandwidth(self):
        from repro.eval import ablation_bandwidth

        out = ablation_bandwidth("lab", TINY, bandwidths_mhz=(10.0, 20.0))
        assert set(out) == {10.0, 20.0}

    def test_confidence_functions(self):
        from repro.eval import ablation_confidence_functions

        out = ablation_confidence_functions("lab", TINY)
        assert set(out) == {"paper", "rational", "power2"}

    def test_shadowing(self):
        from repro.eval import ablation_shadowing

        out = ablation_shadowing("lab", TINY, sigmas_db=(0.0, 4.0))
        assert set(out) == {0.0, 4.0}

    def test_antennas(self):
        from repro.eval import ablation_antennas

        out = ablation_antennas("lab", TINY)
        assert set(out) == {"omni", "sector-inward", "sector-outward"}

    def test_device_heterogeneity(self):
        from repro.eval import ablation_device_heterogeneity

        out = ablation_device_heterogeneity(
            "lab", TINY, offset_sigmas_db=(0.0, 3.0)
        )
        assert set(out) == {0.0, 3.0}
        assert set(out[0.0]) == {"paper-literal", "generalized"}


class TestExtensions:
    def test_multi_nomadic(self):
        out = ext_multi_nomadic(TINY, counts=(1, 2))
        assert set(out) == {1, 2}

    def test_patterns(self):
        out = ext_mobility_patterns("lab", TINY)
        assert set(out) == {"markov", "patrol", "sweep", "hotspot"}


class TestBaselineComparison:
    def test_all_baselines_run(self):
        out = baseline_comparison("lab", TINY)
        assert set(out) == {
            "nomloc",
            "static-sp",
            "trilateration",
            "fingerprint",
            "weighted-centroid",
            "sequence",
        }
        for name, stats in out.items():
            assert 0 < stats.mean < 12.0, name
