"""Tests for SLV, error statistics, and error CDFs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import ErrorCDF, ErrorStats, slv

errors_lists = st.lists(
    st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=40
)


class TestSLV:
    def test_matches_eq22(self):
        e = [1.0, 2.0, 3.0]
        e_bar = 2.0
        expected = sum((x - e_bar) ** 2 for x in e) / 3
        assert slv(e) == pytest.approx(expected)

    def test_constant_errors_zero_slv(self):
        assert slv([2.5] * 10) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            slv([])

    @given(errors_lists)
    def test_nonnegative(self, errors):
        assert slv(errors) >= 0

    @given(errors_lists, st.floats(min_value=-5, max_value=5))
    @settings(max_examples=50)
    def test_shift_invariant(self, errors, shift):
        """SLV measures spread, not level: adding a constant changes nothing."""
        shifted = [e + shift for e in errors]
        assert slv(shifted) == pytest.approx(slv(errors), abs=1e-6)

    def test_uniform_improvement_preserves_slv(self):
        """The paper's point: accuracy and SLV are different axes."""
        bad_but_consistent = [5.0, 5.1, 4.9, 5.0]
        good_but_variable = [0.5, 3.5, 0.2, 4.0]
        assert np.mean(bad_but_consistent) > np.mean(good_but_variable)
        assert slv(bad_but_consistent) < slv(good_but_variable)


class TestErrorStats:
    def test_fields(self):
        s = ErrorStats.from_errors([1.0, 2.0, 3.0, 4.0, 10.0])
        assert s.mean == pytest.approx(4.0)
        assert s.median == pytest.approx(3.0)
        assert s.maximum == 10.0
        assert s.count == 5
        assert s.p90 == pytest.approx(np.percentile([1, 2, 3, 4, 10], 90))

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorStats.from_errors([])
        with pytest.raises(ValueError):
            ErrorStats.from_errors([1.0, -0.1])


class TestErrorCDF:
    def test_at(self):
        cdf = ErrorCDF.from_errors([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == 0.5
        assert cdf.at(2.5) == 0.5
        assert cdf.at(10.0) == 1.0

    def test_percentile_roundtrip(self):
        cdf = ErrorCDF.from_errors(np.linspace(0, 10, 101))
        assert cdf.percentile(50) == pytest.approx(5.0)
        assert cdf.median == pytest.approx(5.0)
        with pytest.raises(ValueError):
            cdf.percentile(101)

    def test_series_shape(self):
        cdf = ErrorCDF.from_errors([1.0, 2.0, 3.0])
        series = cdf.series(max_error=3.0, points=4)
        assert len(series) == 4
        assert series[0] == (0.0, 0.0)
        assert series[-1][1] == 1.0
        with pytest.raises(ValueError):
            cdf.series(points=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorCDF.from_errors([])
        with pytest.raises(ValueError):
            ErrorCDF.from_errors([-1.0])

    def test_dominates(self):
        better = ErrorCDF.from_errors([0.5, 1.0, 1.5])
        worse = ErrorCDF.from_errors([2.0, 3.0, 4.0])
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_dominates_self(self):
        cdf = ErrorCDF.from_errors([1.0, 2.0])
        assert cdf.dominates(cdf)

    @given(errors_lists)
    @settings(max_examples=50)
    def test_monotone_nondecreasing(self, errors):
        cdf = ErrorCDF.from_errors(errors)
        xs = np.linspace(0, max(errors) + 1, 20)
        vals = [cdf.at(float(x)) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))

    @given(errors_lists)
    @settings(max_examples=50)
    def test_mean_matches_numpy(self, errors):
        assert ErrorCDF.from_errors(errors).mean == pytest.approx(
            float(np.mean(errors))
        )
