"""Tests for campaign failure handling: fail-fast and partial results."""

import numpy as np
import pytest

from repro.eval import CampaignWorkerError, SiteFailure, run_campaign
from repro.geometry import Point

SITES = (Point(1.0, 1.0), Point(2.0, 1.0), Point(3.0, 1.0))


class FlakyLocalizer:
    """Deterministic localizer that explodes at one (site, repetition).

    Module-level so it pickles into worker processes.
    """

    def __init__(self, bad_site: float, bad_rep: int = 1):
        self.bad_site = bad_site
        self.bad_rep = bad_rep
        self.rep_counts: dict[float, int] = {}

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float:
        rep = self.rep_counts.get(object_position.x, 0)
        self.rep_counts[object_position.x] = rep + 1
        if object_position.x == self.bad_site and rep == self.bad_rep:
            raise RuntimeError("solver exploded")
        return float(rng.uniform(0.5, 1.5))


class TestFailFast:
    def test_raises_with_replay_coordinates(self):
        with pytest.raises(CampaignWorkerError) as excinfo:
            run_campaign(
                FlakyLocalizer(bad_site=2.0, bad_rep=1),
                SITES,
                repetitions=3,
                seed=5,
            )
        err = excinfo.value
        assert err.site_index == 1
        assert err.site == Point(2.0, 1.0)
        assert err.repetition == 1
        assert err.seed == 5
        assert "RuntimeError: solver exploded" in str(err)
        assert "SeedSequence([5, 1, 1])" in str(err)

    def test_parallel_also_fails_fast(self):
        with pytest.raises(CampaignWorkerError) as excinfo:
            run_campaign(
                FlakyLocalizer(bad_site=2.0, bad_rep=0),
                SITES,
                repetitions=2,
                seed=5,
                workers=2,
            )
        assert excinfo.value.site_index == 1

    def test_healthy_campaign_is_complete(self):
        result = run_campaign(
            FlakyLocalizer(bad_site=-1.0), SITES, repetitions=2, seed=5
        )
        assert result.complete
        assert result.failed_sites == ()
        assert len(result.sites) == len(SITES)


class TestPartialResults:
    def test_failing_site_is_reported_not_raised(self):
        result = run_campaign(
            FlakyLocalizer(bad_site=2.0, bad_rep=1),
            SITES,
            repetitions=3,
            seed=5,
            partial_results=True,
        )
        assert not result.complete
        assert len(result.sites) == 2
        assert len(result.failed_sites) == 1
        failure = result.failed_sites[0]
        assert isinstance(failure, SiteFailure)
        assert failure.site_index == 1
        assert failure.repetition == 1
        assert failure.error == "RuntimeError: solver exploded"

    def test_stats_cover_surviving_sites_only(self):
        result = run_campaign(
            FlakyLocalizer(bad_site=2.0, bad_rep=0),
            SITES,
            repetitions=2,
            seed=5,
            partial_results=True,
        )
        assert len(result.per_site_means()) == 2
        assert np.isfinite(result.stats.mean)

    def test_parallel_partial_matches_sequential(self):
        kwargs = dict(
            sites=SITES, repetitions=2, seed=5, partial_results=True
        )
        seq = run_campaign(FlakyLocalizer(bad_site=2.0, bad_rep=0), **kwargs)
        par = run_campaign(
            FlakyLocalizer(bad_site=2.0, bad_rep=0), workers=2, **kwargs
        )
        assert [s.errors for s in par.sites] == [s.errors for s in seq.sites]
        assert par.failed_sites == seq.failed_sites

    def test_all_sites_failing_yields_empty_result(self):
        class AlwaysBroken:
            def localization_error(self, object_position, rng):
                raise ValueError("no anchors")

        result = run_campaign(
            AlwaysBroken(),
            SITES,
            repetitions=1,
            seed=5,
            partial_results=True,
        )
        assert result.sites == ()
        assert len(result.failed_sites) == len(SITES)
