"""Process-parallel ``run_campaign`` vs the sequential reference.

The contract: any ``workers`` value produces bit-identical results,
because per-query randomness is keyed only by (seed, site, repetition) —
never by which process ran the site — and worker-side spans merge back
into the parent tracer under the campaign span.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import run_campaign
from repro.geometry import Point

SITES = (Point(1.0, 2.0), Point(3.5, 1.0), Point(2.0, 4.0))


class ArithmeticLocalizer:
    """Deterministic, picklable stand-in: error depends on site + RNG only.

    Module-level on purpose — worker processes must be able to unpickle it.
    """

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float:
        base = object_position.x + 10.0 * object_position.y
        return float(abs(rng.normal(base, 1.0)) + rng.uniform())


class TestParallelBitExactness:
    @pytest.mark.parametrize("workers", [1, 2, len(SITES) + 5])
    def test_matches_sequential(self, workers):
        localizer = ArithmeticLocalizer()
        sequential = run_campaign(localizer, SITES, repetitions=3, seed=11)
        parallel = run_campaign(
            localizer, SITES, repetitions=3, seed=11, workers=workers
        )
        assert parallel == sequential

    def test_zero_workers_is_sequential(self):
        localizer = ArithmeticLocalizer()
        assert run_campaign(
            localizer, SITES, repetitions=2, seed=4, workers=0
        ) == run_campaign(localizer, SITES, repetitions=2, seed=4)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            run_campaign(
                ArithmeticLocalizer(), SITES, repetitions=1, workers=-1
            )

    def test_real_system_matches_sequential(self):
        scenario = get_scenario("lab")
        system = NomLocSystem(
            scenario, SystemConfig(packets_per_link=4, trace_steps=4)
        )
        sites = scenario.test_sites[:2]
        sequential = run_campaign(system, sites, repetitions=1, seed=6)
        parallel = run_campaign(
            system, sites, repetitions=1, seed=6, workers=2
        )
        assert parallel == sequential


class TestParallelSpanMerging:
    def test_worker_spans_adopted_under_campaign(self):
        with obs.capture() as tracer:
            run_campaign(
                ArithmeticLocalizer(),
                SITES,
                repetitions=2,
                seed=1,
                workers=2,
                name="merge-test",
            )
        spans = tracer.finished()
        campaigns = [s for s in spans if s.name == "eval.campaign"]
        assert len(campaigns) == 1
        campaign = campaigns[0]
        assert campaign.attributes["campaign"] == "merge-test"
        assert campaign.counters["queries"] == 2 * len(SITES)

        site_spans = [s for s in spans if s.name == "eval.site"]
        assert len(site_spans) == len(SITES)
        assert {s.attributes["site"] for s in site_spans} == set(
            range(len(SITES))
        )
        # Adopted spans hang off the campaign span with re-issued ids.
        assert all(s.parent_id == campaign.span_id for s in site_spans)
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))

    def test_parallel_without_tracing_records_nothing(self):
        obs.disable()
        result = run_campaign(
            ArithmeticLocalizer(), SITES, repetitions=1, seed=2, workers=2
        )
        assert not obs.is_enabled()
        assert len(result.sites) == len(SITES)

    def test_sequential_and_parallel_site_span_shape_match(self):
        with obs.capture() as seq_tracer:
            run_campaign(ArithmeticLocalizer(), SITES, repetitions=1, seed=8)
        with obs.capture() as par_tracer:
            run_campaign(
                ArithmeticLocalizer(), SITES, repetitions=1, seed=8, workers=3
            )
        seq_names = sorted(s.name for s in seq_tracer.finished())
        par_names = sorted(s.name for s in par_tracer.finished())
        assert seq_names == par_names
