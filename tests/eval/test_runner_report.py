"""Tests for the campaign runner and text report rendering."""

import numpy as np
import pytest

from repro.channel import DelayProfile
from repro.eval import (
    ErrorCDF,
    ErrorStats,
    format_cdf_table,
    format_delay_profile,
    format_stats_table,
    format_table,
    run_campaign,
)
from repro.geometry import Point


class FakeLocalizer:
    """Deterministic per-site errors plus seeded jitter."""

    def __init__(self, base=1.0):
        self.base = base
        self.calls = []

    def localization_error(self, position, rng):
        self.calls.append(position)
        return self.base + position.x * 0.1 + float(rng.uniform(0, 0.01))


class TestRunCampaign:
    def test_shape(self):
        loc = FakeLocalizer()
        sites = [Point(0, 0), Point(1, 0), Point(2, 0)]
        res = run_campaign(loc, sites, repetitions=4, seed=1, name="t")
        assert res.name == "t"
        assert len(res.sites) == 3
        assert all(len(s.errors) == 4 for s in res.sites)
        assert len(loc.calls) == 12

    def test_reproducible(self):
        sites = [Point(0, 0), Point(1, 0)]
        r1 = run_campaign(FakeLocalizer(), sites, 3, seed=5)
        r2 = run_campaign(FakeLocalizer(), sites, 3, seed=5)
        assert r1.per_site_means() == r2.per_site_means()

    def test_different_seeds_differ(self):
        sites = [Point(0, 0)]
        r1 = run_campaign(FakeLocalizer(), sites, 2, seed=1)
        r2 = run_campaign(FakeLocalizer(), sites, 2, seed=2)
        assert r1.per_site_means() != r2.per_site_means()

    def test_stats_and_cdf_views(self):
        res = run_campaign(FakeLocalizer(), [Point(0, 0), Point(10, 0)], 2)
        assert isinstance(res.stats, ErrorStats)
        assert isinstance(res.cdf, ErrorCDF)
        assert res.stats.count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            run_campaign(FakeLocalizer(), [], 3)
        with pytest.raises(ValueError):
            run_campaign(FakeLocalizer(), [Point(0, 0)], 0)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.14159]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "3.142" in lines[3]

    def test_format_table_needs_columns(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_stats_table(self):
        stats = ErrorStats.from_errors([1.0, 2.0, 3.0])
        out = format_stats_table({"static": stats, "nomadic": stats})
        assert "static" in out and "nomadic" in out
        assert "SLV" in out

    def test_cdf_table(self):
        cdfs = {
            "a": ErrorCDF.from_errors([1.0, 2.0]),
            "b": ErrorCDF.from_errors([0.5, 4.0]),
        }
        out = format_cdf_table(cdfs, max_error=4.0, points=5)
        assert "error(m)" in out
        assert out.count("\n") == 5 + 1  # header + separator + 5 rows

    def test_cdf_table_empty_rejected(self):
        with pytest.raises(ValueError):
            format_cdf_table({})

    def test_delay_profile(self):
        profile = DelayProfile(
            np.array([0.0, 50e-9, 100e-9]), np.array([3.0, 1.0, 0.2])
        )
        out = format_delay_profile(profile, "LOS", max_taps=2)
        assert out.startswith("LOS")
        assert "0.05" in out  # 50 ns in us
