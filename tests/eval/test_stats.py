"""Tests for bootstrap CIs and the paired sign test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    bootstrap_ci,
    compare_campaigns,
    paired_sign_test,
    run_campaign,
)
from repro.geometry import Point


class TestBootstrapCI:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for trial in range(40):
            sample = rng.normal(5.0, 1.0, 30)
            lo, hi = bootstrap_ci(sample, seed=trial)
            hits += lo <= 5.0 <= hi
        assert hits >= 32  # ~95% nominal coverage, generous slack

    def test_interval_ordering_and_location(self):
        sample = np.linspace(1, 3, 50)
        lo, hi = bootstrap_ci(sample)
        assert lo < np.mean(sample) < hi
        assert lo < hi

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(0, 1, 10), seed=0)
        large = bootstrap_ci(rng.normal(0, 1, 400), seed=0)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_custom_statistic(self):
        sample = np.concatenate([np.ones(50), [100.0]])
        lo_med, hi_med = bootstrap_ci(sample, statistic=np.median)
        assert hi_med < 2.0  # the median ignores the outlier

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], n_resamples=3)

    def test_deterministic_given_seed(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(sample, seed=7) == bootstrap_ci(sample, seed=7)


class TestPairedSignTest:
    def test_identical_samples(self):
        a = [1.0, 2.0, 3.0]
        assert paired_sign_test(a, a) == 1.0

    def test_overwhelming_difference(self):
        a = [1.0] * 12
        b = [5.0] * 12
        p = paired_sign_test(a, b)
        assert p == pytest.approx(2 * 0.5**12, rel=1e-9)

    def test_balanced_difference_not_significant(self):
        a = [1, 5, 1, 5, 1, 5]
        b = [5, 1, 5, 1, 5, 1]
        assert paired_sign_test(a, b) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_sign_test([1.0], [1.0, 2.0])

    @given(
        st.lists(
            st.floats(min_value=0, max_value=10), min_size=2, max_size=20
        )
    )
    @settings(max_examples=50)
    def test_p_value_range(self, values):
        rng = np.random.default_rng(0)
        other = [v + rng.normal(0, 1) for v in values]
        p = paired_sign_test(values, other)
        assert 0.0 <= p <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 15)
        b = rng.normal(0.5, 1, 15)
        assert paired_sign_test(a, b) == pytest.approx(paired_sign_test(b, a))


class FakeLocalizer:
    def __init__(self, offset):
        self.offset = offset

    def localization_error(self, position, rng):
        return self.offset + float(rng.uniform(0, 0.5))


class TestCompareCampaigns:
    def _campaigns(self, offset_a, offset_b, n_sites=12):
        sites = [Point(float(i), 0.0) for i in range(n_sites)]
        a = run_campaign(FakeLocalizer(offset_a), sites, 3, seed=0, name="a")
        b = run_campaign(FakeLocalizer(offset_b), sites, 3, seed=0, name="b")
        return a, b

    def test_clear_winner_significant(self):
        a, b = self._campaigns(1.0, 3.0)
        cmp = compare_campaigns(a, b)
        assert cmp.mean_difference < 0
        assert cmp.ci_high < 0
        assert cmp.significant
        assert cmp.a_better_sites == 12
        assert cmp.b_better_sites == 0

    def test_no_difference_not_significant(self):
        a, b = self._campaigns(2.0, 2.0)
        cmp = compare_campaigns(a, b)
        assert not cmp.significant
        assert cmp.ci_low <= 0 <= cmp.ci_high or abs(cmp.mean_difference) < 0.3

    def test_site_mismatch_rejected(self):
        a, _ = self._campaigns(1.0, 2.0, n_sites=5)
        _, b = self._campaigns(1.0, 2.0, n_sites=6)
        with pytest.raises(ValueError):
            compare_campaigns(a, b)

    def test_nomloc_vs_static_significance(self):
        """The headline claim, with inference: nomadic beats static."""
        from repro.core import NomLocSystem, SystemConfig
        from repro.environment import get_scenario

        scen = get_scenario("office")
        nom = run_campaign(
            NomLocSystem(scen, SystemConfig(packets_per_link=8)),
            scen.test_sites,
            2,
            seed=0,
            name="nomadic",
        )
        sta = run_campaign(
            NomLocSystem(
                scen, SystemConfig(packets_per_link=8, use_nomadic=False)
            ),
            scen.test_sites,
            2,
            seed=0,
            name="static",
        )
        cmp = compare_campaigns(nom, sta)
        assert cmp.mean_difference < 0  # nomadic better on average
        assert cmp.a_better_sites > cmp.b_better_sites
