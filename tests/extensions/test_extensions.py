"""Tests for the future-work extensions."""

import numpy as np
import pytest

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.extensions import (
    LOBBY_UPGRADES,
    PatternBoundLocalizer,
    lobby_with_nomadic_count,
    upgrade_to_nomadic,
)
from repro.geometry import Point
from repro.mobility import SweepPattern


class TestUpgradeToNomadic:
    def test_upgrade(self):
        lobby = get_scenario("lobby")
        upgraded = upgrade_to_nomadic(lobby, {"AP2": LOBBY_UPGRADES["AP2"]})
        assert len(upgraded.nomadic_aps) == 2
        ap2 = next(ap for ap in upgraded.aps if ap.name == "AP2")
        assert ap2.nomadic
        assert ap2.sites == LOBBY_UPGRADES["AP2"]

    def test_unknown_ap_rejected(self):
        lobby = get_scenario("lobby")
        with pytest.raises(ValueError):
            upgrade_to_nomadic(lobby, {"AP9": (Point(1, 1), Point(2, 2))})

    def test_double_upgrade_rejected(self):
        lobby = get_scenario("lobby")
        with pytest.raises(ValueError):
            upgrade_to_nomadic(lobby, {"AP1": (Point(1, 1), Point(2, 2))})

    def test_upgrade_sites_validated_by_scenario(self):
        lobby = get_scenario("lobby")
        with pytest.raises(ValueError):
            upgrade_to_nomadic(lobby, {"AP2": (Point(23.5, 1.5), Point(99, 99))})


class TestLobbyWithNomadicCount:
    def test_counts(self):
        lobby = get_scenario("lobby")
        for count in (1, 2, 3):
            variant = lobby_with_nomadic_count(lobby, count)
            assert len(variant.nomadic_aps) == count

    def test_count_one_is_identity(self):
        lobby = get_scenario("lobby")
        assert lobby_with_nomadic_count(lobby, 1) is lobby

    def test_invalid_count(self):
        lobby = get_scenario("lobby")
        with pytest.raises(ValueError):
            lobby_with_nomadic_count(lobby, 0)
        with pytest.raises(ValueError):
            lobby_with_nomadic_count(lobby, 4)

    def test_multi_nomadic_system_runs(self):
        lobby = get_scenario("lobby")
        variant = lobby_with_nomadic_count(lobby, 2)
        system = NomLocSystem(
            variant, SystemConfig(packets_per_link=5, trace_steps=6)
        )
        rng = np.random.default_rng(0)
        anchors = system.gather_anchors(variant.test_sites[0], rng)
        names = {a.name.split("@")[0] for a in anchors if a.nomadic}
        assert names == {"AP1", "AP2"}
        est = system.locate_from_anchors(anchors)
        assert variant.plan.contains(est.position)


class TestPatternBoundLocalizer:
    def test_binds_pattern(self):
        lab = get_scenario("lab")
        system = NomLocSystem(lab, SystemConfig(packets_per_link=5, trace_steps=4))
        bound = PatternBoundLocalizer(system, SweepPattern(4))
        rng = np.random.default_rng(0)
        err = bound.localization_error(lab.test_sites[0], rng)
        assert err >= 0
        est = bound.locate(lab.test_sites[0], np.random.default_rng(0))
        assert lab.plan.contains(est.position)

    def test_none_pattern_uses_markov(self):
        lab = get_scenario("lab")
        system = NomLocSystem(lab, SystemConfig(packets_per_link=5))
        bound = PatternBoundLocalizer(system, None)
        err = bound.localization_error(
            lab.test_sites[0], np.random.default_rng(1)
        )
        assert err >= 0
