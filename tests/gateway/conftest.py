"""Shared fixtures for the gateway test suite."""

import numpy as np
import pytest

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario


@pytest.fixture(scope="package")
def lab():
    return get_scenario("lab")


@pytest.fixture(scope="package")
def anchor_sets(lab):
    """Four seeded queries across the lab's test sites."""
    system = NomLocSystem(lab, SystemConfig(packets_per_link=4))
    sets = []
    for i in range(4):
        site = lab.test_sites[i % len(lab.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([11, i]))
        sets.append(tuple(system.gather_anchors(site, rng)))
    return sets
