"""End-to-end gateway tests over real sockets.

Everything here talks to a :class:`GatewayServer` bound to an ephemeral
loopback port through :class:`AsyncGatewayClient` — the full wire path:
HTTP parse, protocol decode, thread-offloaded solve, WAL ledger,
WebSocket push.  The two contracts the issue pins down are asserted
directly: answers over the socket are **bit-identical** to calling
:class:`LocalizationService` in-process, and **no acknowledged write is
ever lost** across a graceful drain or a simulated kill/restart.
"""

import asyncio
import json
import os
import signal

import pytest

from repro.gateway import (
    AsyncGatewayClient,
    GatewayConfig,
    GatewayError,
    GatewayServer,
    MeasurementLedger,
)
from repro.serving import LocalizationRequest, LocalizationService


def run(coro):
    """Drive one async test scenario to completion."""
    return asyncio.run(coro)


def make_server(lab, db_path) -> GatewayServer:
    return GatewayServer(
        lab.plan.boundary,
        config=GatewayConfig(port=0, db_path=str(db_path)),
    )


@pytest.fixture(scope="module")
def direct_answers(lab, anchor_sets):
    """The in-process ground truth the socket answers must match."""
    service = LocalizationService(lab.plan.boundary)
    try:
        return [
            service.locate_request(
                LocalizationRequest(anchors, query_id=f"q{i}")
            )
            for i, anchors in enumerate(anchor_sets)
        ]
    finally:
        service.close()


class TestRoundTrip:
    def test_locate_is_bit_identical_to_in_process_service(
        self, lab, anchor_sets, direct_answers, tmp_path
    ):
        async def scenario():
            async with make_server(lab, tmp_path / "g.db") as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    out = []
                    for i, anchors in enumerate(anchor_sets):
                        out.append(await c.locate(anchors, query_id=f"q{i}"))
                    return out

        answers = run(scenario())
        for wire, direct in zip(answers, direct_answers):
            # == on floats that crossed a socket: the bit-exact contract.
            assert wire["position"]["x"] == direct.position.x
            assert wire["position"]["y"] == direct.position.y
            assert wire["degraded"] == direct.degraded
            assert wire["query_id"] == direct.query_id

    def test_submit_wait_persists_and_answers(
        self, lab, anchor_sets, direct_answers, tmp_path
    ):
        db = tmp_path / "g.db"

        async def scenario():
            async with make_server(lab, db) as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    ack = await c.submit_batch(
                        "q0", anchor_sets[0], object_id="cart", wait=True
                    )
                    polled = await c.get_estimate("q0")
                    return ack, polled

        ack, polled = run(scenario())
        assert ack["status"] == "accepted" and not ack["duplicate"]
        assert ack["estimate"]["position"]["x"] == direct_answers[0].position.x
        assert ack["estimate"]["position"]["y"] == direct_answers[0].position.y
        assert polled["status"] == "answered"
        assert polled["estimate"] == ack["estimate"]
        # The ack was durable: the row survives the server.
        with MeasurementLedger(db) as ledger:
            assert ledger.get_estimate("q0") == ack["estimate"]
            assert ledger.counts()["pending"] == 0

    def test_duplicate_submission_reacks_same_estimate(
        self, lab, anchor_sets, tmp_path
    ):
        async def scenario():
            async with make_server(lab, tmp_path / "g.db") as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    first = await c.submit_batch("b1", anchor_sets[0], wait=True)
                    again = await c.submit_batch("b1", anchor_sets[0], wait=True)
                    return first, again, server.duplicates_total

        first, again, duplicates = run(scenario())
        assert not first["duplicate"]
        assert again["duplicate"]
        assert again["estimate"] == first["estimate"]
        assert duplicates == 1

    def test_background_solve_and_estimate_polling(
        self, lab, anchor_sets, tmp_path
    ):
        async def scenario():
            async with make_server(lab, tmp_path / "g.db") as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    ack = await c.submit_batch("bg1", anchor_sets[1], wait=False)
                    assert "estimate" not in ack
                    for _ in range(200):
                        polled = await c.get_estimate("bg1")
                        if polled["status"] == "answered":
                            return polled
                        await asyncio.sleep(0.01)
                    raise AssertionError("estimate never materialized")

        polled = run(scenario())
        assert polled["estimate"]["query_id"] == "bg1"
        assert "position" in polled["estimate"]

    def test_unknown_batch_404(self, lab, tmp_path):
        async def scenario():
            async with make_server(lab, tmp_path / "g.db") as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    with pytest.raises(GatewayError) as err:
                        await c.get_estimate("never-submitted")
                    return err.value

        err = run(scenario())
        assert err.status == 404
        assert err.payload["error"] == "unknown-batch"

    def test_malformed_payload_maps_to_400_with_code(self, lab, tmp_path):
        async def scenario():
            async with make_server(lab, tmp_path / "g.db") as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    with pytest.raises(GatewayError) as err:
                        await c.request_json(
                            "POST", "/v1/locate", {"anchors": []}
                        )
                    bad_version = None
                    try:
                        await c.request_json(
                            "POST", "/v1/locate", {"v": 99, "anchors": [{}]}
                        )
                    except GatewayError as exc:
                        bad_version = exc
                    return err.value, bad_version, server.errors_total

        bad_anchor, bad_version, errors_total = run(scenario())
        assert bad_anchor.status == 400
        assert bad_anchor.payload["error"] == "bad-anchor"
        assert bad_version is not None
        assert bad_version.payload["error"] == "bad-version"
        assert errors_total == 2

    def test_keep_alive_connection_reuse(self, lab, anchor_sets, tmp_path):
        async def scenario():
            async with make_server(lab, tmp_path / "g.db") as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    for _ in range(5):
                        health = await c.healthz()
                        assert health["status"] == "ok"
                    return server.requests_total, len(server._connections)

        requests_total, open_connections = run(scenario())
        assert requests_total == 5
        assert open_connections <= 1  # all five rode one socket


class TestMetricsEndpoint:
    def test_metrics_document_is_json_clean_and_complete(
        self, lab, anchor_sets, tmp_path
    ):
        async def scenario():
            async with make_server(lab, tmp_path / "g.db") as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    await c.locate(anchor_sets[0], query_id="m0")
                    await c.submit_batch("m1", anchor_sets[1], wait=True)
                    return await c.metrics()

        doc = run(scenario())
        # Already crossed the wire once; must also re-serialize cleanly.
        json.dumps(doc)
        gateway = doc["gateway"]
        assert gateway["requests_total"] == 3  # locate + submit + this scrape
        assert gateway["ingested_total"] == 1
        assert gateway["answered_total"] == 1
        assert gateway["ledger"]["batches"] == 1
        assert gateway["ledger"]["pending"] == 0
        cluster = doc["cluster"]
        assert cluster["answered"] >= 2
        assert "shard0/replica0" in cluster["replicas"]


class TestStreaming:
    def test_position_pushes_reach_subscribers(
        self, lab, anchor_sets, tmp_path
    ):
        async def scenario():
            async with make_server(lab, tmp_path / "g.db") as server:
                client = AsyncGatewayClient(server.host, server.port)
                stream = client.stream("cart-7")
                events = []

                async def consume():
                    async for event in stream:
                        events.append(event)
                        if len(events) == 2:
                            return

                consumer = asyncio.ensure_future(consume())
                await asyncio.sleep(0.05)  # let the subscribe land
                async with client:
                    await client.submit_batch(
                        "s1", anchor_sets[0], object_id="cart-7", wait=True
                    )
                    await client.submit_batch(
                        "s2", anchor_sets[1], object_id="cart-7", wait=True
                    )
                    await client.submit_batch(
                        "other", anchor_sets[2], object_id="cart-9", wait=True
                    )
                await asyncio.wait_for(consumer, timeout=5.0)
                await stream.aclose()
                stored = {}
                for batch_id in ("s1", "s2"):
                    stored[batch_id] = server.ledger.get_estimate(batch_id)
                return events, stored, server.published_total

        events, stored, published = run(scenario())
        assert [e["batch_id"] for e in events] == ["s1", "s2"]
        for event in events:
            assert event["type"] == "position"
            assert event["object_id"] == "cart-7"
            # The push carries the exact stored estimate position.
            assert event["position"] == stored[event["batch_id"]]["position"]
        assert published == 2  # cart-9's estimate went to nobody


class TestSessionStreaming:
    def test_track_and_session_events_reach_subscribers(
        self, lab, anchor_sets, tmp_path
    ):
        from repro.sessions import SessionConfig, SessionManager, ZoneMap

        sessions = SessionManager(
            ZoneMap.grid(lab.plan.boundary, 2, 3),
            SessionConfig(enter_debounce=1, exit_debounce=1),
        )

        async def scenario():
            server = GatewayServer(
                lab.plan.boundary,
                config=GatewayConfig(port=0, db_path=str(tmp_path / "s.db")),
                sessions=sessions,
            )
            async with server:
                client = AsyncGatewayClient(server.host, server.port)
                stream = client.stream("cart-7")
                events = []

                async def consume():
                    async for event in stream:
                        events.append(event)
                        if len(events) == 5:
                            return

                consumer = asyncio.ensure_future(consume())
                await asyncio.sleep(0.05)  # let the subscribe land
                async with client:
                    await client.submit_batch(
                        "s1", anchor_sets[0], object_id="cart-7", wait=True
                    )
                    await client.submit_batch(
                        "s2", anchor_sets[1], object_id="cart-7", wait=True
                    )
                    metrics = await client.metrics()
                await asyncio.wait_for(consumer, timeout=5.0)
                await stream.aclose()
                return events, metrics

        events, metrics = run(scenario())
        by_type = {}
        for event in events:
            by_type.setdefault(event["type"], []).append(event)
        # Each answered batch pushes position + track; the first fix also
        # confirms a zone entry (enter_debounce=1) -> one session-event.
        assert len(by_type["position"]) == 2
        assert len(by_type["track"]) == 2
        assert len(by_type["session-event"]) == 1
        for event in by_type["position"]:
            assert event["confidence"] == 1.0
        for event in by_type["track"]:
            assert event["object_id"] == "cart-7"
            assert event["sigma_m"] > 0
            assert set(event["position"]) == {"x", "y"}
        entry = by_type["session-event"][0]
        assert entry["kind"] == "enter"
        assert entry["object_id"] == "cart-7"
        assert entry["zone"] in sessions.zones.names()
        # The /metrics document grows a sessions section when enabled.
        assert metrics["sessions"]["sessions_active"] == 1
        assert metrics["sessions"]["updates_total"] == 2


class TestStreamResume:
    def test_reconnect_resumes_exactly_missed_frames(
        self, lab, anchor_sets, tmp_path
    ):
        """Drop mid-stream, reconnect with resume_from, get exactly the
        frames published while away — no dupes, no gaps."""

        async def scenario():
            async with make_server(lab, tmp_path / "r.db") as server:
                client = AsyncGatewayClient(server.host, server.port)
                first = client.stream("cart-7")
                got = []

                async def consume_one():
                    async for event in first:
                        got.append(event)
                        return

                consumer = asyncio.ensure_future(consume_one())
                await asyncio.sleep(0.05)  # let the subscribe land
                async with client:
                    await client.submit_batch(
                        "s1", anchor_sets[0], object_id="cart-7", wait=True
                    )
                    await asyncio.wait_for(consumer, timeout=5.0)
                    await first.aclose()  # connection drops mid-stream
                    # Published while this subscriber is away: stamped
                    # into the replay ring even with zero listeners.
                    await client.submit_batch(
                        "s2", anchor_sets[1], object_id="cart-7", wait=True
                    )
                    await client.submit_batch(
                        "s3", anchor_sets[2], object_id="cart-7", wait=True
                    )
                    second = client.stream(
                        "cart-7", resume_from=got[0]["stream_seq"]
                    )
                    resumed = []

                    async def consume_rest():
                        async for event in second:
                            resumed.append(event)
                            if len(resumed) == 3:
                                return

                    rest = asyncio.ensure_future(consume_rest())
                    await asyncio.sleep(0.05)
                    await client.submit_batch(
                        "s4", anchor_sets[3], object_id="cart-7", wait=True
                    )
                    await asyncio.wait_for(rest, timeout=5.0)
                    await second.aclose()
                return got, resumed, server.resumed_total

        got, resumed, resumed_total = run(scenario())
        assert [e["batch_id"] for e in got] == ["s1"]
        # The two missed frames replay first, then live push continues.
        assert [e["batch_id"] for e in resumed] == ["s2", "s3", "s4"]
        seqs = [e["stream_seq"] for e in got + resumed]
        assert seqs == list(range(seqs[0], seqs[0] + 4))  # contiguous
        assert resumed_total == 2

    def test_resume_past_ring_eviction_skips_to_oldest_buffered(
        self, lab, anchor_sets, tmp_path
    ):
        async def scenario():
            server = GatewayServer(
                lab.plan.boundary,
                config=GatewayConfig(
                    port=0,
                    db_path=str(tmp_path / "rb.db"),
                    ws_replay_buffer=2,
                ),
            )
            async with server:
                client = AsyncGatewayClient(server.host, server.port)
                async with client:
                    for i, anchors in enumerate(anchor_sets):
                        await client.submit_batch(
                            f"b{i}", anchors, object_id="cart-7", wait=True
                        )
                    stream = client.stream("cart-7", resume_from=0)
                    events = []

                    async def consume():
                        async for event in stream:
                            events.append(event)
                            if len(events) == 2:
                                return

                    await asyncio.wait_for(consume(), timeout=5.0)
                    await stream.aclose()
                return events

        events = run(scenario())
        # Four frames were published but the ring holds two: the resume
        # replays what survives, and the seq jump makes the gap visible.
        assert [e["stream_seq"] for e in events] == [3, 4]
        assert [e["batch_id"] for e in events] == ["b2", "b3"]

    def test_unresponsive_subscriber_is_idle_closed(self, lab, tmp_path):
        from repro.gateway import protocol
        from repro.gateway.ws import OP_TEXT, encode_frame

        async def scenario():
            server = GatewayServer(
                lab.plan.boundary,
                config=GatewayConfig(
                    port=0,
                    db_path=str(tmp_path / "hb.db"),
                    ws_heartbeat_s=0.05,
                    ws_idle_pings=1,
                ),
            )
            async with server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    (
                        f"GET /v1/stream HTTP/1.1\r\n"
                        f"Host: {server.host}:{server.port}\r\n"
                        "Upgrade: websocket\r\n"
                        "Connection: Upgrade\r\n"
                        "Sec-WebSocket-Key: aWRsZS1zdWJzY3JpYmVy\r\n"
                        "Sec-WebSocket-Version: 13\r\n\r\n"
                    ).encode("latin-1")
                )
                await writer.drain()
                await reader.readuntil(b"\r\n\r\n")
                subscribe = {
                    "v": protocol.PROTOCOL_VERSION,
                    "type": "subscribe",
                    "object_id": "cart-7",
                }
                writer.write(
                    encode_frame(
                        OP_TEXT, protocol.dumps(subscribe).encode(), mask=True
                    )
                )
                await writer.drain()
                # Never answer the heartbeat pings: the server must hang
                # up on its own instead of pinning the dead socket.
                await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                return server.idle_closed_total

        assert run(scenario()) == 1

    def test_responsive_subscriber_survives_heartbeats(
        self, lab, anchor_sets, tmp_path
    ):
        async def scenario():
            server = GatewayServer(
                lab.plan.boundary,
                config=GatewayConfig(
                    port=0,
                    db_path=str(tmp_path / "hb2.db"),
                    ws_heartbeat_s=0.05,
                    ws_idle_pings=1,
                ),
            )
            async with server:
                client = AsyncGatewayClient(server.host, server.port)
                stream = client.stream("cart-7")
                events = []

                async def consume():
                    async for event in stream:
                        events.append(event)
                        return

                consumer = asyncio.ensure_future(consume())
                # Several heartbeat windows of silence: the client's
                # automatic pongs keep the subscription alive.
                await asyncio.sleep(0.3)
                async with client:
                    await client.submit_batch(
                        "hb1", anchor_sets[0], object_id="cart-7", wait=True
                    )
                await asyncio.wait_for(consumer, timeout=5.0)
                await stream.aclose()
                return events, server.idle_closed_total

        events, idle_closed = run(scenario())
        assert [e["batch_id"] for e in events] == ["hb1"]
        assert idle_closed == 0


class TestDurability:
    def test_no_acked_write_lost_across_drain(self, lab, anchor_sets, tmp_path):
        """Satellite 2's contract: drain answers every acked batch."""
        db = tmp_path / "drain.db"

        async def scenario():
            server = make_server(lab, db)
            await server.start()
            acked = []
            async with AsyncGatewayClient(server.host, server.port) as c:
                for i in range(8):
                    ack = await c.submit_batch(
                        f"d{i}", anchor_sets[i % len(anchor_sets)], wait=False
                    )
                    assert ack["status"] == "accepted"
                    acked.append(ack["batch_id"])
            # Stop immediately: background solves are still in flight.
            await server.stop()
            assert server.ledger.closed
            return acked

        acked = run(scenario())
        with MeasurementLedger(db) as ledger:
            counts = ledger.counts()
            assert counts["batches"] == len(acked)
            assert counts["pending"] == 0, "drain lost acked batches"
            for batch_id in acked:
                assert ledger.get_estimate(batch_id) is not None

    def test_kill_replay_answers_backlog_bit_identically(
        self, lab, anchor_sets, direct_answers, tmp_path
    ):
        """A gateway killed after ack but before answering: the restart
        replays the backlog from the ledger alone, bit-identically."""
        db = tmp_path / "killed.db"
        # Forge the post-kill state directly: acked batches, no
        # estimates (exactly what a SIGKILL between the ledger commit
        # and the solve leaves behind).
        from repro.gateway import protocol as proto

        with MeasurementLedger(db) as ledger:
            for i, anchors in enumerate(anchor_sets):
                payload = {
                    "v": proto.PROTOCOL_VERSION,
                    "batch_id": f"q{i}",
                    "object_id": f"obj{i}",
                    "anchors": [proto.anchor_to_dict(a) for a in anchors],
                }
                ledger.record_batch(
                    f"q{i}", f"obj{i}", anchors,
                    json.dumps(payload, sort_keys=True),
                )
            assert ledger.counts()["pending"] == len(anchor_sets)

        async def scenario():
            async with make_server(lab, db) as server:
                replayed = server.replayed
                async with AsyncGatewayClient(server.host, server.port) as c:
                    estimates = [
                        await c.get_estimate(f"q{i}")
                        for i in range(len(anchor_sets))
                    ]
                return replayed, estimates

        replayed, estimates = run(scenario())
        assert replayed == len(anchor_sets)
        for i, (polled, direct) in enumerate(zip(estimates, direct_answers)):
            assert polled["status"] == "answered"
            estimate = polled["estimate"]
            assert estimate["position"]["x"] == direct.position.x
            assert estimate["position"]["y"] == direct.position.y

    def test_restart_after_clean_shutdown_has_no_backlog(
        self, lab, anchor_sets, tmp_path
    ):
        db = tmp_path / "clean.db"

        async def first_run():
            async with make_server(lab, db) as server:
                async with AsyncGatewayClient(server.host, server.port) as c:
                    await c.submit_batch("c1", anchor_sets[0], wait=True)

        async def second_run():
            async with make_server(lab, db) as server:
                return server.replayed, server.ledger.counts()

        run(first_run())
        replayed, counts = run(second_run())
        assert replayed == 0
        assert counts["batches"] == 1 and counts["pending"] == 0


class TestGracefulSignals:
    def test_sigterm_triggers_drain(self, lab, anchor_sets, tmp_path):
        db = tmp_path / "sig.db"

        async def scenario():
            server = make_server(lab, db)
            await server.start()
            forever = asyncio.ensure_future(server.serve_forever())
            await asyncio.sleep(0)  # let serve_forever install handlers
            async with AsyncGatewayClient(server.host, server.port) as c:
                ack = await c.submit_batch("sig1", anchor_sets[0], wait=False)
                assert ack["status"] == "accepted"
                os.kill(os.getpid(), signal.SIGTERM)
                await asyncio.wait_for(forever, timeout=10.0)
            return server.ledger.closed

        assert run(scenario())
        with MeasurementLedger(db) as ledger:
            assert ledger.counts()["pending"] == 0
            assert ledger.get_estimate("sig1") is not None

    def test_stop_is_idempotent(self, lab, tmp_path):
        async def scenario():
            server = make_server(lab, tmp_path / "g.db")
            await server.start()
            await server.stop()
            await server.stop()  # second stop is a no-op
            return server.ledger.closed

        assert run(scenario())
