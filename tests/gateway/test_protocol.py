"""Tests for the gateway wire protocol codec.

Round-trips must be bit-exact (the gateway's answers-over-a-socket ==
answers-in-process contract rests on it), malformed payloads must raise
:class:`ProtocolError` with stable machine-readable codes, and the
version gate must reject anything but the current protocol version.
"""

import math

import pytest

from repro.gateway import PROTOCOL_VERSION, ProtocolError
from repro.gateway import protocol


class TestCodec:
    def test_anchor_roundtrip_is_bit_exact(self, anchor_sets):
        for anchor in anchor_sets[0]:
            wire = protocol.loads(protocol.dumps(protocol.anchor_to_dict(anchor)))
            rebuilt = protocol.anchor_from_dict(wire)
            assert rebuilt.name == anchor.name
            assert rebuilt.position.x == anchor.position.x  # exact doubles
            assert rebuilt.position.y == anchor.position.y
            assert rebuilt.pdp == anchor.pdp
            assert rebuilt.nomadic == anchor.nomadic

    def test_awkward_doubles_survive_json(self):
        values = [1 / 3, math.pi, 1e-308, 0.1 + 0.2, 123456.789012345678]
        for value in values:
            wire = protocol.dumps({"x": value})
            assert protocol.loads(wire)["x"] == value

    def test_dumps_is_deterministic(self):
        payload = {"b": 1, "a": {"z": 2, "y": 3}}
        assert protocol.dumps(payload) == protocol.dumps(
            {"a": {"y": 3, "z": 2}, "b": 1}
        )

    def test_decode_locate_builds_request(self, anchor_sets, lab):
        payload = {
            "v": PROTOCOL_VERSION,
            "query_id": "q7",
            "timeout_s": 0.5,
            "anchors": [protocol.anchor_to_dict(a) for a in anchor_sets[0]],
        }
        request = protocol.decode_locate(payload, area=lab.plan.boundary)
        assert request.query_id == "q7"
        assert request.timeout_s == 0.5
        assert request.area is lab.plan.boundary
        assert request.gate is None
        assert len(request.anchors) == len(anchor_sets[0])

    def test_decode_measurement_batch(self, anchor_sets):
        payload = {
            "batch_id": "b1",
            "object_id": "cart-3",
            "wait": True,
            "anchors": [protocol.anchor_to_dict(a) for a in anchor_sets[0]],
        }
        batch = protocol.decode_measurement_batch(payload)
        assert batch["batch_id"] == "b1"
        assert batch["object_id"] == "cart-3"
        assert batch["wait"] is True
        assert batch["gate"] is None
        assert len(batch["anchors"]) == len(anchor_sets[0])


class TestValidation:
    @pytest.mark.parametrize(
        "raw, code",
        [
            ("not json", "bad-json"),
            ("[1, 2]", "bad-json"),
            ('"a string"', "bad-json"),
        ],
    )
    def test_loads_rejects_non_objects(self, raw, code):
        with pytest.raises(ProtocolError) as err:
            protocol.loads(raw)
        assert err.value.code == code

    @pytest.mark.parametrize(
        "record, code",
        [
            ("not-a-dict", "bad-anchor"),
            ({"x": 1.0, "y": 2.0, "pdp": 3.0}, "bad-anchor"),  # no name
            ({"name": "", "x": 1.0, "y": 2.0, "pdp": 3.0}, "bad-anchor"),
            ({"name": "AP", "x": "wat", "y": 2.0, "pdp": 3.0}, "bad-anchor"),
            ({"name": "AP", "x": 1.0, "y": 2.0}, "bad-anchor"),  # no pdp
            ({"name": "AP", "x": 1.0, "y": 2.0, "pdp": -1.0}, "bad-anchor"),
        ],
    )
    def test_bad_anchor_records(self, record, code):
        with pytest.raises(ProtocolError) as err:
            protocol.anchor_from_dict(record)
        assert err.value.code == code

    def test_locate_without_anchors(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_locate({"query_id": "q"})
        assert err.value.code == "missing-field"
        with pytest.raises(ProtocolError) as err:
            protocol.decode_locate({"anchors": []})
        assert err.value.code == "bad-anchor"

    def test_locate_bad_fields(self, anchor_sets):
        anchors = [protocol.anchor_to_dict(a) for a in anchor_sets[0]]
        with pytest.raises(ProtocolError) as err:
            protocol.decode_locate({"anchors": anchors, "query_id": 3})
        assert err.value.code == "bad-field"
        with pytest.raises(ProtocolError) as err:
            protocol.decode_locate({"anchors": anchors, "timeout_s": -1})
        assert err.value.code == "bad-field"
        with pytest.raises(ProtocolError) as err:
            protocol.decode_locate({"anchors": anchors, "timeout_s": "soon"})
        assert err.value.code == "bad-field"

    def test_batch_requires_batch_id(self, anchor_sets):
        anchors = [protocol.anchor_to_dict(a) for a in anchor_sets[0]]
        with pytest.raises(ProtocolError) as err:
            protocol.decode_measurement_batch({"anchors": anchors})
        assert err.value.code == "missing-field"
        with pytest.raises(ProtocolError) as err:
            protocol.decode_measurement_batch({"anchors": anchors, "batch_id": ""})
        assert err.value.code == "missing-field"

    def test_malformed_gate_section(self, anchor_sets):
        anchors = [protocol.anchor_to_dict(a) for a in anchor_sets[0]]
        with pytest.raises(ProtocolError) as err:
            protocol.decode_locate({"anchors": anchors, "gate": "nope"})
        assert err.value.code == "bad-gate"
        bad_verdict = {"gate": {"verdicts": [{"bogus": 1}]}}
        with pytest.raises(ProtocolError) as err:
            protocol.decode_locate({"anchors": anchors, **bad_verdict})
        assert err.value.code == "bad-gate"


class TestVersionGate:
    def test_current_and_absent_versions_pass(self):
        protocol.check_version({"v": PROTOCOL_VERSION})
        protocol.check_version({})  # absent means "current"

    @pytest.mark.parametrize("version", [0, 2, "1", None])
    def test_other_versions_rejected(self, version):
        with pytest.raises(ProtocolError) as err:
            protocol.check_version({"v": version})
        assert err.value.code == "bad-version"


class TestGateRoundtrip:
    def test_gate_result_survives_the_wire(self, anchor_sets):
        from repro.guard import GateResult, LinkStatus, LinkVerdict

        anchors = anchor_sets[0]
        verdicts = tuple(
            LinkVerdict(
                name=a.name,
                status=LinkStatus.DEGRADED if i == 0 else LinkStatus.OK,
                quality=0.5 if i == 0 else 1.0,
                reasons=("nan-burst",) if i == 0 else (),
                clean_packets=3,
                expected_packets=4,
                pdp=a.pdp,
                energy=a.pdp * 2.0,
            )
            for i, a in enumerate(anchors)
        )
        result = GateResult(
            anchors=tuple(anchors),
            quality_weights={v.name: v.quality for v in verdicts},
            verdicts=verdicts,
        )
        wire = protocol.loads(protocol.dumps({"gate": result.to_dict()}))
        rebuilt = protocol._gate_from_wire(wire)
        assert rebuilt is not None
        assert [a.name for a in rebuilt.anchors] == [
            a.name for a in result.anchors
        ]
        for ours, theirs in zip(rebuilt.anchors, result.anchors):
            assert ours.position.x == theirs.position.x
            assert ours.pdp == theirs.pdp  # exact doubles
        assert rebuilt.quality_weights == result.quality_weights
        assert rebuilt.verdicts == result.verdicts
