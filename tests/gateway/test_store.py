"""Tests for the durable measurement ledger.

The satellite coverage the issue calls out explicitly: schema creation
and version checking, idempotent re-insert of a replayed batch,
crash-mid-transaction recovery (reopen after a simulated kill), and
concurrent writer serialization.
"""

import json
import sqlite3
import threading

import pytest

from repro.gateway import SCHEMA_VERSION, LedgerError, MeasurementLedger


def _payload(anchors):
    return json.dumps(
        {
            "batch_id": "b",
            "anchors": [
                {
                    "name": a.name,
                    "x": a.position.x,
                    "y": a.position.y,
                    "pdp": a.pdp,
                    "nomadic": a.nomadic,
                }
                for a in anchors
            ],
        }
    )


def _wire(x=1.0, y=2.0, degraded=False, reason=""):
    return {
        "v": 1,
        "query_id": "b",
        "position": {"x": x, "y": y},
        "degraded": degraded,
        "reason": reason,
        "latency_s": 0.01,
        "confidence": 1.0,
    }


class TestSchema:
    def test_creates_all_tables_and_version_row(self, tmp_path):
        with MeasurementLedger(tmp_path / "ledger.db") as ledger:
            assert ledger.schema_version() == SCHEMA_VERSION
            assert ledger.counts() == {
                "access_points": 0,
                "batches": 0,
                "estimates": 0,
                "guard_verdicts": 0,
                "pending": 0,
            }

    def test_reopen_preserves_schema_and_rows(self, tmp_path, anchor_sets):
        path = tmp_path / "ledger.db"
        with MeasurementLedger(path) as ledger:
            ledger.record_batch("b1", "obj", anchor_sets[0], _payload(anchor_sets[0]))
        with MeasurementLedger(path) as ledger:
            assert ledger.schema_version() == SCHEMA_VERSION
            assert ledger.counts()["batches"] == 1
            assert ledger.get_batch("b1")["object_id"] == "obj"

    def test_version_mismatch_fails_loudly(self, tmp_path):
        path = tmp_path / "ledger.db"
        MeasurementLedger(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE schema_version SET version = 999")
        conn.commit()
        conn.close()
        with pytest.raises(LedgerError, match="schema version 999"):
            MeasurementLedger(path)

    def test_closed_ledger_refuses_writes(self, tmp_path, anchor_sets):
        ledger = MeasurementLedger(tmp_path / "ledger.db")
        ledger.close()
        assert ledger.closed
        with pytest.raises(LedgerError):
            ledger.record_batch(
                "b1", "", anchor_sets[0], _payload(anchor_sets[0])
            )
        ledger.close()  # idempotent


class TestIdempotentReplay:
    def test_reinsert_is_ignored_not_duplicated(self, tmp_path, anchor_sets):
        with MeasurementLedger(tmp_path / "ledger.db") as ledger:
            assert ledger.record_batch(
                "b1", "obj", anchor_sets[0], _payload(anchor_sets[0])
            )
            # At-least-once delivery: the client retries the same batch.
            assert not ledger.record_batch(
                "b1", "obj", anchor_sets[0], _payload(anchor_sets[0])
            )
            assert ledger.counts()["batches"] == 1

    def test_replay_does_not_overwrite_original_payload(
        self, tmp_path, anchor_sets
    ):
        with MeasurementLedger(tmp_path / "ledger.db") as ledger:
            ledger.record_batch("b1", "obj", anchor_sets[0], '{"first": true}')
            ledger.record_batch("b1", "obj", anchor_sets[0], '{"second": true}')
            assert ledger.get_batch("b1")["payload"] == {"first": True}

    def test_estimate_reinsert_is_idempotent(self, tmp_path, anchor_sets):
        with MeasurementLedger(tmp_path / "ledger.db") as ledger:
            ledger.record_batch("b1", "", anchor_sets[0], _payload(anchor_sets[0]))
            ledger.record_estimate("b1", _wire())
            ledger.record_estimate("b1", _wire())  # replayed solve: same row
            assert ledger.counts()["estimates"] == 1
            assert ledger.get_estimate("b1")["position"] == {"x": 1.0, "y": 2.0}

    def test_access_points_dedupe_across_batches(self, tmp_path, anchor_sets):
        with MeasurementLedger(tmp_path / "ledger.db") as ledger:
            ledger.record_batch("b1", "", anchor_sets[0], _payload(anchor_sets[0]))
            ledger.record_batch("b2", "", anchor_sets[0], _payload(anchor_sets[0]))
            names = {a.name for a in anchor_sets[0]}
            assert ledger.counts()["access_points"] == len(names)


class TestCrashRecovery:
    def test_uncommitted_transaction_rolls_back_on_reopen(
        self, tmp_path, anchor_sets
    ):
        """A kill mid-transaction must not leave a half-written batch."""
        path = tmp_path / "ledger.db"
        with MeasurementLedger(path) as ledger:
            ledger.record_batch("acked", "", anchor_sets[0], _payload(anchor_sets[0]))
        # Simulate a writer killed mid-transaction: BEGIN + INSERT on a
        # raw connection, then drop it without COMMIT.
        conn = sqlite3.connect(path, isolation_level=None)
        conn.execute("BEGIN IMMEDIATE")
        conn.execute(
            "INSERT INTO batches(batch_id, object_id, received_s, payload)"
            " VALUES ('torn', '', 0.0, '{}')"
        )
        conn.close()  # no COMMIT — the "kill"
        with MeasurementLedger(path) as ledger:
            assert ledger.get_batch("acked") is not None  # committed survives
            assert ledger.get_batch("torn") is None  # torn write rolled back

    def test_pending_backlog_lists_unanswered_in_arrival_order(
        self, tmp_path, anchor_sets
    ):
        path = tmp_path / "ledger.db"
        with MeasurementLedger(path) as ledger:
            ledger.record_batch("b1", "o1", anchor_sets[0], _payload(anchor_sets[0]))
            ledger.record_batch("b2", "o2", anchor_sets[1], _payload(anchor_sets[1]))
            ledger.record_batch("b3", "o3", anchor_sets[2], _payload(anchor_sets[2]))
            ledger.record_estimate("b2", _wire())
        # Reopen (the restart) and ask for the replay backlog.
        with MeasurementLedger(path) as ledger:
            pending = ledger.pending_batches()
            assert [p["batch_id"] for p in pending] == ["b1", "b3"]
            assert ledger.counts()["pending"] == 2

    def test_checkpoint_then_reopen_roundtrip(self, tmp_path, anchor_sets):
        path = tmp_path / "ledger.db"
        ledger = MeasurementLedger(path)
        ledger.record_batch("b1", "", anchor_sets[0], _payload(anchor_sets[0]))
        ledger.checkpoint()
        ledger.close()
        with MeasurementLedger(path) as reopened:
            assert reopened.get_batch("b1") is not None


class TestConcurrentWriters:
    def test_parallel_threads_serialize_without_loss(
        self, tmp_path, anchor_sets
    ):
        ledger = MeasurementLedger(tmp_path / "ledger.db")
        per_thread, threads = 25, 4
        errors = []

        def writer(tid: int) -> None:
            try:
                for i in range(per_thread):
                    batch_id = f"t{tid}-b{i}"
                    ledger.record_batch(
                        batch_id, f"obj{tid}", anchor_sets[0],
                        _payload(anchor_sets[0]),
                    )
                    ledger.record_estimate(batch_id, _wire(x=float(tid), y=float(i)))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        workers = [
            threading.Thread(target=writer, args=(tid,)) for tid in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        counts = ledger.counts()
        assert counts["batches"] == per_thread * threads
        assert counts["estimates"] == per_thread * threads
        assert counts["pending"] == 0
        ledger.close()

    def test_contending_replays_ack_exactly_once(self, tmp_path, anchor_sets):
        """N threads replaying the same batch: exactly one wins the insert."""
        ledger = MeasurementLedger(tmp_path / "ledger.db")
        outcomes = []
        lock = threading.Lock()

        def writer() -> None:
            inserted = ledger.record_batch(
                "contended", "", anchor_sets[0], _payload(anchor_sets[0])
            )
            with lock:
                outcomes.append(inserted)

        workers = [threading.Thread(target=writer) for _ in range(8)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert sorted(outcomes) == [False] * 7 + [True]
        assert ledger.counts()["batches"] == 1
        ledger.close()


class TestVerdictPersistence:
    def test_guard_verdicts_roundtrip(self, tmp_path, anchor_sets):
        verdicts = [
            {"name": "AP1", "status": "ok", "quality": 1.0, "reasons": []},
            {
                "name": "AP2",
                "status": "degraded",
                "quality": 0.5,
                "reasons": ["nan-burst"],
            },
        ]
        with MeasurementLedger(tmp_path / "ledger.db") as ledger:
            ledger.record_batch(
                "b1", "", anchor_sets[0], _payload(anchor_sets[0]),
                verdicts=verdicts,
            )
            stored = ledger.get_verdicts("b1")
        assert stored == verdicts
