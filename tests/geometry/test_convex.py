"""Tests for convex hulls, triangulation, and convex decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Polygon,
    convex_hull,
    decompose_convex,
    triangulate,
)

coords = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


def l_shape():
    return Polygon.from_coords(
        [(0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10)]
    )


def u_shape():
    return Polygon.from_coords(
        [(0, 0), (9, 0), (9, 6), (6, 6), (6, 2), (3, 2), (3, 6), (0, 6)]
    )


class TestConvexHull:
    def test_square_hull(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0.5, 0.5)]
        hull = convex_hull(pts)
        assert hull.area() == pytest.approx(1.0)
        assert len(hull.vertices) == 4

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            convex_hull([Point(0, 0), Point(1, 0)])

    @given(st.lists(points, min_size=3, max_size=25))
    @settings(max_examples=60)
    def test_hull_contains_all_points(self, pts):
        try:
            hull = convex_hull(pts)
        except ValueError:
            return  # degenerate input
        for p in pts:
            assert hull.contains(p) or any(
                p.distance_to(v) < 1e-6 for v in hull.vertices
            )

    @given(st.lists(points, min_size=3, max_size=25))
    @settings(max_examples=60)
    def test_hull_is_convex(self, pts):
        try:
            hull = convex_hull(pts)
        except ValueError:
            return
        assert hull.is_convex()


class TestTriangulate:
    def test_triangle_passthrough(self):
        tri = Polygon.from_coords([(0, 0), (1, 0), (0, 1)])
        tris = triangulate(tri)
        assert len(tris) == 1

    def test_square_two_triangles(self):
        tris = triangulate(Polygon.rectangle(0, 0, 2, 2))
        assert len(tris) == 2

    def test_triangle_count_is_n_minus_2(self):
        poly = l_shape()
        tris = triangulate(poly)
        assert len(tris) == len(poly.vertices) - 2

    def test_areas_sum_to_polygon_area(self):
        poly = u_shape()
        tris = triangulate(poly)
        total = sum(Polygon(t).area() for t in tris)
        assert total == pytest.approx(poly.area())


class TestDecomposeConvex:
    def test_convex_input_unchanged(self):
        sq = Polygon.rectangle(0, 0, 3, 3)
        pieces = decompose_convex(sq)
        assert pieces == [sq]

    def test_l_shape_two_pieces(self):
        pieces = decompose_convex(l_shape())
        assert len(pieces) == 2
        assert all(p.is_convex() for p in pieces)

    def test_pieces_tile_area(self):
        for poly in (l_shape(), u_shape()):
            pieces = decompose_convex(poly)
            assert sum(p.area() for p in pieces) == pytest.approx(poly.area())

    def test_pieces_are_convex(self):
        for poly in (l_shape(), u_shape()):
            for p in decompose_convex(poly):
                assert p.is_convex()

    def test_interior_points_covered(self):
        poly = u_shape()
        pieces = decompose_convex(poly)
        rng = np.random.default_rng(3)
        for pt in poly.sample_points(100, rng):
            assert any(piece.contains(pt) for piece in pieces)

    def test_exterior_points_not_covered(self):
        poly = l_shape()
        pieces = decompose_convex(poly)
        # Deep inside the notch — not in the polygon, must not be in a piece.
        notch = Point(8, 8)
        assert not any(piece.contains(notch, boundary=False) for piece in pieces)
