"""Property tests: convex decomposition of random rectilinear polygons.

Floor plans are mostly rectilinear (L/U/T/staircase shapes); these tests
generate random staircase polygons and verify the decomposition's tiling
invariants hold on every one of them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Polygon, decompose_convex


@st.composite
def staircase_polygons(draw):
    """Monotone staircase polygons: x in [0, n], steps of varying height.

    Built as the region under a positive step function — always simple,
    usually non-convex.
    """
    num_steps = draw(st.integers(min_value=2, max_value=6))
    heights = draw(
        st.lists(
            st.integers(min_value=1, max_value=8),
            min_size=num_steps,
            max_size=num_steps,
        )
    )
    widths = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=num_steps,
            max_size=num_steps,
        )
    )
    coords = [(0.0, 0.0)]
    x = 0.0
    for w, h in zip(widths, heights):
        coords.append((x, float(h)))
        x += w
        coords.append((x, float(h)))
    coords.append((x, 0.0))
    # Drop duplicate-y consecutive corners introduced by equal heights.
    cleaned = [coords[0]]
    for c in coords[1:]:
        if c != cleaned[-1]:
            cleaned.append(c)
    if len(cleaned) < 3:
        return None
    try:
        return Polygon.from_coords(cleaned)
    except (ValueError, RuntimeError):
        return None


class TestStaircaseDecomposition:
    @given(staircase_polygons())
    @settings(max_examples=60, deadline=None)
    def test_pieces_tile_the_polygon(self, poly):
        if poly is None:
            return
        pieces = decompose_convex(poly)
        assert pieces
        total = sum(p.area() for p in pieces)
        assert total == pytest.approx(poly.area(), rel=1e-6)

    @given(staircase_polygons())
    @settings(max_examples=60, deadline=None)
    def test_every_piece_is_convex(self, poly):
        if poly is None:
            return
        for piece in decompose_convex(poly):
            assert piece.is_convex()

    @given(staircase_polygons())
    @settings(max_examples=40, deadline=None)
    def test_interior_points_covered_exactly_once(self, poly):
        if poly is None:
            return
        pieces = decompose_convex(poly)
        rng = np.random.default_rng(0)
        try:
            samples = poly.sample_points(25, rng, margin=0.05)
        except RuntimeError:
            return  # polygon too thin to sample with margin
        for p in samples:
            holders = [
                piece for piece in pieces if piece.contains(p, boundary=False)
            ]
            # Strictly interior points of the polygon lie strictly inside
            # exactly one piece unless they sit on a shared diagonal.
            on_boundary = any(
                piece.contains(p, boundary=True)
                and not piece.contains(p, boundary=False)
                for piece in pieces
            )
            assert len(holders) == 1 or on_boundary

    @given(staircase_polygons())
    @settings(max_examples=40, deadline=None)
    def test_localizer_accepts_every_staircase(self, poly):
        """Any staircase venue can host the SP localizer end-to-end."""
        if poly is None or poly.area() < 4.0:
            return
        from repro.core import Anchor, NomLocLocalizer

        loc = NomLocLocalizer(poly)
        xmin, ymin, xmax, ymax = poly.bounding_box()
        rng = np.random.default_rng(1)
        try:
            inner = poly.sample_points(3, rng, margin=0.2)
        except RuntimeError:
            return
        obj = inner[0]
        anchors = [
            Anchor(f"A{i}", p, 1.0 / (0.1 + obj.distance_to(p)) ** 2)
            for i, p in enumerate(inner)
        ]
        if len({a.position for a in anchors}) < 2:
            return
        est = loc.locate(anchors)
        # The estimate stays within the venue bounding box at worst.
        assert xmin - 0.1 <= est.position.x <= xmax + 0.1
        assert ymin - 0.1 <= est.position.y <= ymax + 0.1
