"""Tests for halfspaces, bisectors, and polygon clipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    HalfSpace,
    Point,
    Polygon,
    bisector_halfspace,
    clip_polygon,
    halfspaces_to_matrix,
    intersect_halfspaces,
)

coords = st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestHalfSpace:
    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            HalfSpace(0, 0, 1)

    def test_contains(self):
        hs = HalfSpace(1, 0, 5)  # x <= 5
        assert hs.contains(Point(4, 100))
        assert hs.contains(Point(5, 0))
        assert not hs.contains(Point(6, 0))

    def test_evaluate_sign(self):
        hs = HalfSpace(0, 1, 2)  # y <= 2
        assert hs.evaluate(Point(0, 0)) == pytest.approx(2.0)
        assert hs.evaluate(Point(0, 3)) == pytest.approx(-1.0)

    def test_normalized_preserves_set(self):
        hs = HalfSpace(3, 4, 10)
        n = hs.normalized()
        assert np.hypot(n.ax, n.ay) == pytest.approx(1.0)
        for p in (Point(0, 0), Point(2, 1), Point(10, 10)):
            assert hs.contains(p) == n.contains(p)

    def test_relaxed(self):
        hs = HalfSpace(1, 0, 0)  # x <= 0
        assert not hs.contains(Point(1, 0))
        assert hs.relaxed(2.0).contains(Point(1, 0))
        with pytest.raises(ValueError):
            hs.relaxed(-1)

    def test_boundary_distance(self):
        hs = HalfSpace(2, 0, 4)  # x <= 2
        assert hs.boundary_distance(Point(5, 7)) == pytest.approx(3.0)

    def test_as_row(self):
        assert HalfSpace(1, 2, 3).as_row() == (1, 2, 3)


class TestBisector:
    def test_matches_eq7(self):
        near, far = Point(1, 2), Point(5, 6)
        hs = bisector_halfspace(near, far)
        assert hs.ax == pytest.approx(2 * (far.x - near.x))
        assert hs.ay == pytest.approx(2 * (far.y - near.y))
        assert hs.b == pytest.approx(far.x**2 + far.y**2 - near.x**2 - near.y**2)

    def test_coincident_raises(self):
        with pytest.raises(ValueError):
            bisector_halfspace(Point(1, 1), Point(1, 1))

    @given(points, points, points)
    @settings(max_examples=100)
    def test_halfspace_iff_closer(self, near, far, q):
        if near.distance_to(far) < 1e-6:
            return
        hs = bisector_halfspace(near, far)
        d_near, d_far = q.distance_to(near), q.distance_to(far)
        # The halfspace slack scales with the squared-distance gap; skip
        # cases within the contains() tolerance of the boundary.
        if abs(d_near**2 - d_far**2) < 1e-6:
            return
        assert hs.contains(q) == (d_near < d_far)

    @given(points, points)
    @settings(max_examples=60)
    def test_midpoint_on_boundary(self, near, far):
        if near.distance_to(far) < 1e-6:
            return
        hs = bisector_halfspace(near, far)
        mid = Point((near.x + far.x) / 2, (near.y + far.y) / 2)
        assert abs(hs.evaluate(mid)) < 1e-6 * max(1.0, abs(hs.b))


class TestClipping:
    def test_clip_square_in_half(self):
        sq = Polygon.rectangle(0, 0, 2, 2)
        left = clip_polygon(sq, HalfSpace(1, 0, 1))  # x <= 1
        assert left is not None
        assert left.area() == pytest.approx(2.0)

    def test_clip_away_everything(self):
        sq = Polygon.rectangle(0, 0, 2, 2)
        assert clip_polygon(sq, HalfSpace(1, 0, -5)) is None

    def test_clip_no_effect(self):
        sq = Polygon.rectangle(0, 0, 2, 2)
        out = clip_polygon(sq, HalfSpace(1, 0, 100))
        assert out is not None
        assert out.area() == pytest.approx(4.0)

    def test_clip_none_propagates(self):
        assert clip_polygon(None, HalfSpace(1, 0, 0)) is None

    def test_intersect_halfspaces_box(self):
        bound = Polygon.rectangle(-10, -10, 10, 10)
        hs = [
            HalfSpace(1, 0, 1),
            HalfSpace(-1, 0, 1),
            HalfSpace(0, 1, 1),
            HalfSpace(0, -1, 1),
        ]
        region = intersect_halfspaces(hs, bound)
        assert region is not None
        assert region.area() == pytest.approx(4.0)
        assert region.centroid().almost_equals(Point(0, 0))

    def test_intersect_infeasible(self):
        bound = Polygon.rectangle(-10, -10, 10, 10)
        hs = [HalfSpace(1, 0, 0), HalfSpace(-1, 0, -1)]  # x <= 0 and x >= 1
        assert intersect_halfspaces(hs, bound) is None

    def test_halfspaces_to_matrix(self):
        a, b = halfspaces_to_matrix([HalfSpace(1, 2, 3), HalfSpace(4, 5, 6)])
        assert a.shape == (2, 2)
        assert b.tolist() == [3, 6]

    def test_halfspaces_to_matrix_empty(self):
        a, b = halfspaces_to_matrix([])
        assert a.shape == (0, 2)
        assert b.shape == (0,)

    @given(st.lists(st.tuples(points, points), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_clipped_region_satisfies_all_constraints(self, pairs):
        bound = Polygon.rectangle(-25, -25, 25, 25)
        halfspaces = []
        for near, far in pairs:
            if near.distance_to(far) < 1e-3:
                continue
            halfspaces.append(bisector_halfspace(near, far))
        region = intersect_halfspaces(halfspaces, bound)
        if region is None:
            return
        c = region.centroid()
        for hs in halfspaces:
            assert hs.contains(c, tol=1e-6)

    @given(st.lists(st.tuples(points, points), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_clipping_shrinks_area(self, pairs):
        bound = Polygon.rectangle(-25, -25, 25, 25)
        region = bound
        for near, far in pairs:
            if near.distance_to(far) < 1e-3:
                continue
            prev_area = region.area() if region else 0.0
            region = clip_polygon(region, bisector_halfspace(near, far))
            if region is None:
                break
            assert region.area() <= prev_area + 1e-6
