"""Bit-exactness tests for the lockstep halfspace-clipping kernel.

``intersect_halfspaces_batch`` promises polygons bit-identical to the
scalar :func:`~repro.geometry.intersect_halfspaces` per lane, so every
comparison here is exact (``==`` on vertex floats), never ``approx``.
"""

import numpy as np
import pytest

from repro.geometry import (
    HalfSpace,
    Polygon,
    intersect_halfspaces,
    intersect_halfspaces_batch,
)
from repro.geometry.halfspace import _SCALAR_LANES

BOUND = Polygon.rectangle(0.0, 0.0, 20.0, 14.0)


def rows_to_halfspaces(a, b):
    return [HalfSpace(a[j, 0], a[j, 1], b[j]) for j in range(len(b))]


def random_lane(rng, max_rows=8):
    m = int(rng.integers(0, max_rows + 1))
    a = rng.normal(size=(m, 2))
    # Offsets biased so many rows actually cut through the bound.
    b = a @ rng.uniform([2, 2], [18, 12]) + rng.normal(scale=4.0, size=m)
    return a, b


def assert_lane_identical(scalar, batched):
    if scalar is None or batched is None:
        assert scalar is None and batched is None
        return
    assert len(scalar.vertices) == len(batched.vertices)
    for p, q in zip(scalar.vertices, batched.vertices):
        assert (p.x, p.y) == (q.x, q.y)


class TestIntersectHalfspacesBatch:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_lanes_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        lanes = [random_lane(rng) for _ in range(2 * _SCALAR_LANES)]
        batched = intersect_halfspaces_batch(lanes, BOUND)
        for (a, b), poly in zip(lanes, batched):
            scalar = intersect_halfspaces(rows_to_halfspaces(a, b), BOUND)
            assert_lane_identical(scalar, poly)

    def test_small_batch_scalar_fallback_path(self):
        # Below _SCALAR_LANES the kernel clips per lane; results must not
        # depend on which side of the threshold the batch lands.
        rng = np.random.default_rng(99)
        lanes = [random_lane(rng) for _ in range(_SCALAR_LANES - 1)]
        small = intersect_halfspaces_batch(lanes, BOUND)
        padded = intersect_halfspaces_batch(
            lanes + [random_lane(rng) for _ in range(_SCALAR_LANES)], BOUND
        )
        for lane, (p, q) in enumerate(zip(small, padded[: len(small)])):
            assert_lane_identical(p, q)

    def test_empty_batch_and_singleton(self):
        assert intersect_halfspaces_batch([], BOUND) == []
        a = np.array([[1.0, 0.0]])
        b = np.array([7.0])
        [poly] = intersect_halfspaces_batch([(a, b)], BOUND)
        scalar = intersect_halfspaces(rows_to_halfspaces(a, b), BOUND)
        assert_lane_identical(scalar, poly)

    def test_zero_row_lane_returns_bound(self):
        lanes = [(np.zeros((0, 2)), np.zeros(0))] * (_SCALAR_LANES + 2)
        for poly in intersect_halfspaces_batch(lanes, BOUND):
            assert_lane_identical(BOUND, poly)

    def test_infeasible_lane_is_none_without_poisoning_others(self):
        # x <= -1 and x >= 1 cannot meet inside the bound.
        bad_a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        bad_b = np.array([-1.0, -1.0])
        good_a = np.array([[1.0, 0.0]])
        good_b = np.array([10.0])
        lanes = [(bad_a, bad_b), (good_a, good_b)] * _SCALAR_LANES
        batched = intersect_halfspaces_batch(lanes, BOUND)
        for (a, b), poly in zip(lanes, batched):
            scalar = intersect_halfspaces(rows_to_halfspaces(a, b), BOUND)
            assert_lane_identical(scalar, poly)
        assert batched[0] is None
        assert batched[1] is not None

    def test_mixed_row_counts(self):
        rng = np.random.default_rng(7)
        lanes = [random_lane(rng, max_rows=1) for _ in range(_SCALAR_LANES)]
        lanes += [random_lane(rng, max_rows=12) for _ in range(_SCALAR_LANES)]
        batched = intersect_halfspaces_batch(lanes, BOUND)
        for (a, b), poly in zip(lanes, batched):
            scalar = intersect_halfspaces(rows_to_halfspaces(a, b), BOUND)
            assert_lane_identical(scalar, poly)

    def test_degenerate_sliver_lanes(self):
        # Two parallel cuts leaving (almost) zero area: the scalar path
        # collapses slivers to None; the batch must agree lane by lane.
        lanes = []
        for eps in (0.0, 1e-13, 1e-9, 1e-3):
            a = np.array([[1.0, 0.0], [-1.0, 0.0]])
            b = np.array([5.0 + eps, -5.0])
            lanes.append((a, b))
        lanes = lanes * 4
        batched = intersect_halfspaces_batch(lanes, BOUND)
        for (a, b), poly in zip(lanes, batched):
            scalar = intersect_halfspaces(rows_to_halfspaces(a, b), BOUND)
            assert_lane_identical(scalar, poly)
