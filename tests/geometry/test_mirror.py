"""Tests for virtual-AP mirror reflections and boundary constraints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Polygon,
    Segment,
    boundary_halfspaces,
    reflect_point,
    virtual_aps,
)

coords = st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestReflectPoint:
    def test_reflect_across_x_axis(self):
        edge = Segment(Point(0, 0), Point(1, 0))
        assert reflect_point(Point(3, 4), edge).almost_equals(Point(3, -4))

    def test_reflect_across_diagonal(self):
        edge = Segment(Point(0, 0), Point(1, 1))
        assert reflect_point(Point(1, 0), edge).almost_equals(Point(0, 1))

    def test_point_on_line_is_fixed(self):
        edge = Segment(Point(0, 0), Point(5, 0))
        assert reflect_point(Point(2, 0), edge).almost_equals(Point(2, 0))

    def test_degenerate_edge_raises(self):
        with pytest.raises(ValueError):
            reflect_point(Point(1, 1), Segment(Point(0, 0), Point(0, 0)))

    @given(points, points, points)
    @settings(max_examples=80)
    def test_involution(self, p, a, b):
        if a.distance_to(b) < 1e-3:
            return
        edge = Segment(a, b)
        assert reflect_point(reflect_point(p, edge), edge).almost_equals(p, tol=1e-5)

    @given(points, points, points)
    @settings(max_examples=80)
    def test_equidistant_from_line_endpoints(self, p, a, b):
        if a.distance_to(b) < 1e-3:
            return
        m = reflect_point(p, Segment(a, b))
        assert p.distance_to(a) == pytest.approx(m.distance_to(a), abs=1e-5)
        assert p.distance_to(b) == pytest.approx(m.distance_to(b), abs=1e-5)


class TestVirtualAPs:
    def test_one_vap_per_edge(self):
        area = Polygon.rectangle(0, 0, 10, 6)
        vaps = virtual_aps(Point(3, 3), area)
        assert len(vaps) == 4

    def test_vaps_outside_area(self):
        area = Polygon.rectangle(0, 0, 10, 6)
        for vap in virtual_aps(Point(3, 3), area):
            assert not area.contains(vap, boundary=False)

    def test_anchor_must_be_inside(self):
        area = Polygon.rectangle(0, 0, 10, 6)
        with pytest.raises(ValueError):
            virtual_aps(Point(20, 20), area)
        with pytest.raises(ValueError):
            virtual_aps(Point(0, 0), area)  # on boundary


class TestBoundaryHalfspaces:
    def test_rectangle_constraints_recover_area(self):
        """For a convex area the boundary halfspaces ARE the area."""
        area = Polygon.rectangle(0, 0, 10, 6)
        hs = boundary_halfspaces(Point(4, 3), area)
        rng = np.random.default_rng(11)
        inside = area.sample_points(100, rng, margin=0.05)
        for p in inside:
            assert all(h.contains(p, tol=1e-6) for h in hs)
        outside = [Point(-1, 3), Point(11, 3), Point(4, -1), Point(4, 7)]
        for p in outside:
            assert not all(h.contains(p, tol=1e-6) for h in hs)

    def test_anchor_choice_does_not_matter(self):
        """Paper: 'the site of AP 1 could be any other site within the area'."""
        area = Polygon.rectangle(0, 0, 8, 8)
        hs_a = boundary_halfspaces(Point(1, 1), area)
        hs_b = boundary_halfspaces(Point(6, 7), area)
        rng = np.random.default_rng(5)
        probes = [Point(float(x), float(y)) for x, y in rng.uniform(-4, 12, (200, 2))]
        for p in probes:
            in_a = all(h.contains(p, tol=1e-9) for h in hs_a)
            in_b = all(h.contains(p, tol=1e-9) for h in hs_b)
            assert in_a == in_b

    def test_triangle_area(self):
        area = Polygon.from_coords([(0, 0), (6, 0), (0, 6)])
        hs = boundary_halfspaces(Point(1, 1), area)
        assert len(hs) == 3
        assert all(h.contains(Point(2, 2)) for h in hs)
        assert not all(h.contains(Point(5, 5)) for h in hs)
