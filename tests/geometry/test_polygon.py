"""Unit and property tests for Polygon."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Polygon, Segment


@pytest.fixture
def unit_square():
    return Polygon.rectangle(0, 0, 1, 1)


@pytest.fixture
def l_shape():
    # An L: 10x10 square with the top-right 5x5 quadrant removed.
    return Polygon.from_coords(
        [(0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10)]
    )


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Polygon((Point(0, 0), Point(1, 0)))

    def test_cw_input_is_normalized_to_ccw(self):
        p = Polygon.from_coords([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert p.signed_area() > 0

    def test_rectangle_validation(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(0, 0, 0, 1)


class TestMeasures:
    def test_square_area(self, unit_square):
        assert unit_square.area() == pytest.approx(1.0)

    def test_l_shape_area(self, l_shape):
        assert l_shape.area() == pytest.approx(75.0)

    def test_perimeter(self, unit_square):
        assert unit_square.perimeter() == pytest.approx(4.0)

    def test_centroid_square(self, unit_square):
        assert unit_square.centroid().almost_equals(Point(0.5, 0.5))

    def test_centroid_l_shape_inside(self, l_shape):
        c = l_shape.centroid()
        assert l_shape.contains(c)

    def test_bounding_box(self, l_shape):
        assert l_shape.bounding_box() == (0, 0, 10, 10)


class TestPredicates:
    def test_contains_interior(self, unit_square):
        assert unit_square.contains(Point(0.5, 0.5))

    def test_contains_boundary_toggle(self, unit_square):
        edge_pt = Point(0.5, 0.0)
        assert unit_square.contains(edge_pt, boundary=True)
        assert not unit_square.contains(edge_pt, boundary=False)

    def test_excludes_exterior(self, unit_square):
        assert not unit_square.contains(Point(2, 2))

    def test_l_shape_notch_excluded(self, l_shape):
        assert not l_shape.contains(Point(8, 8))
        assert l_shape.contains(Point(2, 8))
        assert l_shape.contains(Point(8, 2))

    def test_in_operator(self, unit_square):
        assert Point(0.2, 0.7) in unit_square

    def test_is_convex(self, unit_square, l_shape):
        assert unit_square.is_convex()
        assert not l_shape.is_convex()

    def test_reflex_vertices(self, l_shape):
        reflex = l_shape.reflex_vertex_indices()
        assert len(reflex) == 1
        assert l_shape.vertices[reflex[0]] == Point(5, 5)

    def test_intersects_segment(self, unit_square):
        crossing = Segment(Point(-1, 0.5), Point(2, 0.5))
        outside = Segment(Point(2, 2), Point(3, 3))
        assert unit_square.intersects_segment(crossing)
        assert not unit_square.intersects_segment(outside)

    def test_segment_crosses_interior(self, unit_square):
        through = Segment(Point(-1, 0.5), Point(2, 0.5))
        grazing = Segment(Point(-1, 0.0), Point(2, 0.0))
        assert unit_square.segment_crosses_interior(through)
        assert not unit_square.segment_crosses_interior(grazing)


class TestSampling:
    def test_sample_points_inside(self, l_shape):
        rng = np.random.default_rng(7)
        pts = l_shape.sample_points(50, rng)
        assert len(pts) == 50
        assert all(l_shape.contains(p, boundary=False) for p in pts)

    def test_sample_with_margin(self, unit_square):
        rng = np.random.default_rng(7)
        pts = unit_square.sample_points(20, rng, margin=0.2)
        for p in pts:
            assert 0.2 <= p.x <= 0.8
            assert 0.2 <= p.y <= 0.8

    def test_sample_negative_count(self, unit_square):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            unit_square.sample_points(-1, rng)

    def test_grid_points(self, unit_square):
        pts = unit_square.grid_points(0.5)
        assert len(pts) == 4
        assert all(unit_square.contains(p) for p in pts)

    def test_grid_spacing_validation(self, unit_square):
        with pytest.raises(ValueError):
            unit_square.grid_points(0)

    def test_translated(self, unit_square):
        t = unit_square.translated(5, -2)
        assert t.contains(Point(5.5, -1.5))
        assert t.area() == pytest.approx(1.0)


@st.composite
def convex_polygons(draw):
    """Random convex polygons built from points on a circle."""
    n = draw(st.integers(min_value=3, max_value=10))
    angles = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=6.28),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    radius = draw(st.floats(min_value=1.0, max_value=50.0))
    pts = [Point(radius * np.cos(a), radius * np.sin(a)) for a in angles]
    # Reject nearly-degenerate layouts where consecutive points coincide.
    for i in range(len(pts)):
        if pts[i].distance_to(pts[(i + 1) % len(pts)]) < 1e-3:
            return None
    try:
        return Polygon(tuple(pts))
    except ValueError:
        return None


class TestPolygonProperties:
    @given(convex_polygons())
    @settings(max_examples=60)
    def test_centroid_inside_convex(self, poly):
        if poly is None:
            return
        assert poly.contains(poly.centroid())

    @given(convex_polygons())
    @settings(max_examples=60)
    def test_area_positive(self, poly):
        if poly is None:
            return
        assert poly.area() > 0

    @given(convex_polygons(), st.floats(min_value=-10, max_value=10),
           st.floats(min_value=-10, max_value=10))
    @settings(max_examples=40)
    def test_translation_preserves_area(self, poly, dx, dy):
        if poly is None:
            return
        assert poly.translated(dx, dy).area() == pytest.approx(poly.area())
