"""Unit tests for geometric primitives."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Segment,
    distance_point_to_segment,
    orientation,
    segment_intersection_point,
    segments_intersect,
)

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_vector_arithmetic(self):
        p = Point(1, 2) + Point(3, 4)
        assert p == Point(4, 6)
        assert Point(4, 6) - Point(3, 4) == Point(1, 2)
        assert Point(1, 2) * 2 == Point(2, 4)
        assert 2 * Point(1, 2) == Point(2, 4)
        assert Point(2, 4) / 2 == Point(1, 2)

    def test_iter_unpacking(self):
        x, y = Point(7.5, -2.0)
        assert (x, y) == (7.5, -2.0)

    def test_centroid(self):
        c = Point.centroid([Point(0, 0), Point(2, 0), Point(0, 2), Point(2, 2)])
        assert c.almost_equals(Point(1, 1))

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            Point.centroid([])

    def test_norm(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)

    @given(points, points)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


class TestSegment:
    def test_length_and_midpoint(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.length() == pytest.approx(4.0)
        assert s.midpoint() == Point(2, 0)

    def test_direction_and_normal_are_unit(self):
        s = Segment(Point(1, 1), Point(4, 5))
        assert s.direction().norm() == pytest.approx(1.0)
        assert s.normal().norm() == pytest.approx(1.0)

    def test_degenerate_direction_raises(self):
        with pytest.raises(ValueError):
            Segment(Point(1, 1), Point(1, 1)).direction()

    def test_contains_point(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.contains_point(Point(5, 0))
        assert not s.contains_point(Point(5, 1))
        assert not s.contains_point(Point(11, 0))


class TestOrientation:
    def test_ccw(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, 1)) == 1

    def test_cw(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(1, 0)) == -1

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0

    @given(points, points, points)
    def test_antisymmetry(self, o, a, b):
        assert orientation(o, a, b) == -orientation(o, b, a)


class TestSegmentIntersection:
    def test_crossing(self):
        s1 = Segment(Point(0, 0), Point(2, 2))
        s2 = Segment(Point(0, 2), Point(2, 0))
        assert segments_intersect(s1, s2)
        p = segment_intersection_point(s1, s2)
        assert p is not None and p.almost_equals(Point(1, 1))

    def test_disjoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(0, 1), Point(1, 1))
        assert not segments_intersect(s1, s2)
        assert segment_intersection_point(s1, s2) is None

    def test_touching_endpoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(1, 0), Point(2, 5))
        assert segments_intersect(s1, s2)
        p = segment_intersection_point(s1, s2)
        assert p is not None and p.almost_equals(Point(1, 0))

    def test_collinear_overlap(self):
        s1 = Segment(Point(0, 0), Point(4, 0))
        s2 = Segment(Point(2, 0), Point(6, 0))
        assert segments_intersect(s1, s2)
        p = segment_intersection_point(s1, s2)
        assert p is not None and p.almost_equals(Point(3, 0))

    def test_collinear_disjoint(self):
        s1 = Segment(Point(0, 0), Point(1, 0))
        s2 = Segment(Point(2, 0), Point(3, 0))
        assert not segments_intersect(s1, s2)

    def test_parallel_offset(self):
        s1 = Segment(Point(0, 0), Point(4, 4))
        s2 = Segment(Point(0, 1), Point(4, 5))
        assert segment_intersection_point(s1, s2) is None

    @given(points, points, points, points)
    def test_intersection_point_consistent_with_predicate(self, a, b, c, d):
        s1, s2 = Segment(a, b), Segment(c, d)
        p = segment_intersection_point(s1, s2)
        if p is not None:
            assert segments_intersect(s1, s2)


class TestDistancePointToSegment:
    def test_perpendicular_foot_inside(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert distance_point_to_segment(Point(5, 3), s) == pytest.approx(3.0)

    def test_clamps_to_endpoint(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert distance_point_to_segment(Point(13, 4), s) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        s = Segment(Point(1, 1), Point(1, 1))
        assert distance_point_to_segment(Point(4, 5), s) == pytest.approx(5.0)

    @given(points, points, points)
    def test_nonnegative_and_bounded_by_endpoints(self, p, a, b):
        s = Segment(a, b)
        d = distance_point_to_segment(p, s)
        assert d >= 0
        assert d <= min(p.distance_to(a), p.distance_to(b)) + 1e-9
