"""Shared fixtures for the guard-layer tests: clean lab link records."""

import numpy as np
import pytest

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario

PACKETS = 12


@pytest.fixture(scope="package")
def lab_system():
    """One lab-scenario system with a small per-link packet budget."""
    return NomLocSystem(
        get_scenario("lab"),
        SystemConfig(packets_per_link=PACKETS, trace_steps=4),
    )


@pytest.fixture(scope="package")
def lab_records(lab_system):
    """Clean link records of one lab query (deterministic seed)."""
    scenario = lab_system.scenario
    return lab_system.gather_link_records(
        scenario.test_sites[0], np.random.default_rng(3)
    )
