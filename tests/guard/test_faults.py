"""Tests for scripted measurement-fault injection."""

import numpy as np
import pytest

from repro.guard import (
    LinkFault,
    LinkFaultInjector,
    LinkFaultKind,
    LinkFaultPlan,
    parse_fault_spec,
)


class TestParseFaultSpec:
    def test_type_and_rate(self):
        fault = parse_fault_spec("nan-burst:0.3")
        assert fault.kind is LinkFaultKind.NAN_BURST
        assert fault.rate == 0.3
        assert fault.ap is None

    def test_with_ap(self):
        fault = parse_fault_spec("ap-outage:1.0:AP3")
        assert fault.kind is LinkFaultKind.AP_OUTAGE
        assert fault.ap == "AP3"

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="known types"):
            parse_fault_spec("gremlins:0.5")

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_fault_spec("nan-burst:lots")

    def test_rate_out_of_range(self):
        with pytest.raises(ValueError, match="rate"):
            parse_fault_spec("nan-burst:1.5")

    def test_wrong_arity(self):
        with pytest.raises(ValueError, match="TYPE:RATE"):
            parse_fault_spec("nan-burst")


class TestFaultMatching:
    def test_untargeted_matches_everything(self):
        fault = LinkFault(LinkFaultKind.PACKET_LOSS, 0.5)
        assert fault.matches("AP1")
        assert fault.matches("AP1@s3")

    def test_targeted_matches_site_links(self):
        fault = LinkFault(LinkFaultKind.PACKET_LOSS, 0.5, ap="AP1")
        assert fault.matches("AP1")
        assert fault.matches("AP1@s3")
        assert not fault.matches("AP2")
        assert not fault.matches("AP2@s1")


class TestPlanComposition:
    def test_empty_by_default(self):
        assert LinkFaultPlan().faults == ()

    def test_plus_concatenates(self):
        plan = LinkFaultPlan.nan_burst(0.3, ap="AP2").plus(
            LinkFaultPlan.outage(1.0, ap="AP3")
        )
        assert [f.kind for f in plan.faults] == [
            LinkFaultKind.NAN_BURST,
            LinkFaultKind.AP_OUTAGE,
        ]

    def test_faults_for_filters_by_link(self):
        plan = LinkFaultPlan.nan_burst(0.3, ap="AP2").plus(
            LinkFaultPlan.packet_loss(0.5)
        )
        assert len(plan.faults_for("AP2")) == 2
        assert len(plan.faults_for("AP4")) == 1


class TestInjectorDeterminism:
    def test_unmatched_link_returned_untouched(self, lab_records):
        injector = LinkFaultInjector(
            LinkFaultPlan.nan_burst(1.0, ap="NOPE"), seed=1
        )
        record = lab_records[0]
        assert injector.corrupt(record) is record

    def test_empty_plan_is_identity(self, lab_records):
        out = LinkFaultInjector().corrupt_batch(lab_records)
        assert all(a is b for a, b in zip(out, lab_records))

    def test_same_seed_replays_bit_identically(self, lab_records):
        plan = LinkFaultPlan.subcarrier_dropout(0.5)
        a = LinkFaultInjector(plan, seed=9).corrupt_batch(lab_records)
        b = LinkFaultInjector(plan, seed=9).corrupt_batch(lab_records)
        for ra, rb in zip(a, b):
            for ma, mb in zip(ra.measurements, rb.measurements):
                np.testing.assert_array_equal(ma.csi, mb.csi)

    def test_different_seeds_differ(self, lab_records):
        plan = LinkFaultPlan.subcarrier_dropout(1.0, fraction=0.1)
        a = LinkFaultInjector(plan, seed=1).corrupt(lab_records[0])
        b = LinkFaultInjector(plan, seed=2).corrupt(lab_records[0])
        assert any(
            not np.array_equal(ma.csi, mb.csi)
            for ma, mb in zip(a.measurements, b.measurements)
        )

    def test_corruption_independent_of_record_order(self, lab_records):
        plan = LinkFaultPlan.nan_burst(0.5)
        forward = LinkFaultInjector(plan, seed=4).corrupt_batch(lab_records)
        backward = LinkFaultInjector(plan, seed=4).corrupt_batch(
            list(reversed(lab_records))
        )
        by_name = {r.name: r for r in backward}
        for record in forward:
            twin = by_name[record.name]
            for ma, mb in zip(record.measurements, twin.measurements):
                np.testing.assert_array_equal(ma.csi, mb.csi)

    def test_repeat_calls_draw_fresh_randomness(self, lab_records):
        injector = LinkFaultInjector(
            LinkFaultPlan.subcarrier_dropout(1.0, fraction=0.1), seed=5
        )
        first = injector.corrupt(lab_records[0])
        second = injector.corrupt(lab_records[0])
        assert any(
            not np.array_equal(ma.csi, mb.csi)
            for ma, mb in zip(first.measurements, second.measurements)
        )


class TestFaultKinds:
    def test_dropout_zeroes_exact_subcarriers(self, lab_records):
        injector = LinkFaultInjector(
            LinkFaultPlan.subcarrier_dropout(1.0, fraction=0.25), seed=2
        )
        record = injector.corrupt(lab_records[0])
        n = len(record.measurements[0].csi)
        for m in record.measurements:
            zeros = int((m.csi == 0).sum())
            assert zeros == max(1, round(0.25 * n))

    def test_packet_loss_shrinks_batch(self, lab_records):
        injector = LinkFaultInjector(LinkFaultPlan.packet_loss(1.0), seed=2)
        record = injector.corrupt(lab_records[0])
        assert record.measurements == ()

    def test_nan_burst_is_contiguous(self, lab_records):
        injector = LinkFaultInjector(
            LinkFaultPlan.nan_burst(1.0, width=8), seed=2
        )
        record = injector.corrupt(lab_records[0])
        for m in record.measurements:
            bad = np.flatnonzero(~np.isfinite(m.csi))
            assert len(bad) == 8
            assert bad[-1] - bad[0] == 7  # one contiguous run

    def test_saturation_clips_preserving_phase(self, lab_records):
        injector = LinkFaultInjector(
            LinkFaultPlan.rssi_saturation(1.0, level=0.35), seed=2
        )
        clean = lab_records[0]
        record = injector.corrupt(clean)
        for before, after in zip(clean.measurements, record.measurements):
            ceiling = 0.35 * float(np.abs(before.csi).max())
            assert np.abs(after.csi).max() <= ceiling * (1 + 1e-9)
            clipped = np.abs(before.csi) > ceiling
            assert clipped.any()
            np.testing.assert_allclose(
                np.angle(after.csi[clipped]),
                np.angle(before.csi[clipped]),
                atol=1e-9,
            )

    def test_outage_empties_batch(self, lab_records):
        injector = LinkFaultInjector(LinkFaultPlan.outage(1.0), seed=2)
        assert injector.corrupt(lab_records[0]).measurements == ()

    def test_phase_smear_shared_across_packets(self, lab_records):
        injector = LinkFaultInjector(LinkFaultPlan.phase_offset(1.0), seed=2)
        clean = lab_records[0]
        record = injector.corrupt(clean)
        rotations = [
            after.csi / before.csi
            for before, after in zip(clean.measurements, record.measurements)
        ]
        for rotation in rotations[1:]:
            np.testing.assert_allclose(rotation, rotations[0], atol=1e-9)
        np.testing.assert_allclose(np.abs(rotations[0]), 1.0, atol=1e-9)

    def test_zero_rate_never_fires(self, lab_records):
        plan = LinkFaultPlan.nan_burst(0.0).plus(LinkFaultPlan.outage(0.0))
        record = LinkFaultInjector(plan, seed=2).corrupt(lab_records[0])
        for before, after in zip(
            lab_records[0].measurements, record.measurements
        ):
            np.testing.assert_array_equal(before.csi, after.csi)


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            LinkFault(LinkFaultKind.PACKET_LOSS, -0.1)

    def test_dropout_fraction_bounds(self):
        with pytest.raises(ValueError):
            LinkFault(
                LinkFaultKind.SUBCARRIER_DROPOUT, 0.5, dropout_fraction=0.0
            )

    def test_burst_width_bounds(self):
        with pytest.raises(ValueError):
            LinkFault(LinkFaultKind.NAN_BURST, 0.5, burst_width=0)

    def test_saturation_level_bounds(self):
        with pytest.raises(ValueError):
            LinkFault(
                LinkFaultKind.RSSI_SATURATION, 0.5, saturation_level=1.5
            )
