"""Tests for gating policy, GuardedSystem, and the selftest drill."""

import numpy as np
import pytest

from repro.guard import (
    GateResult,
    GuardedSystem,
    InsufficientLinksError,
    LinkFaultInjector,
    LinkFaultPlan,
    LinkStatus,
    gate_records,
    run_selftest,
)
from tests.guard.conftest import PACKETS


class TestGateRecords:
    def test_all_clean_keeps_weights_none(self, lab_records):
        result = gate_records(lab_records, PACKETS)
        assert result.quality_weights is None
        assert len(result.anchors) == len(lab_records)
        assert all(v.status is LinkStatus.OK for v in result.verdicts)
        assert result.confidence == 1.0
        assert result.reasons == ()
        assert result.degraded == () and result.rejected == ()

    def test_degraded_link_gets_scaled_weight(self, lab_records):
        injector = LinkFaultInjector(
            LinkFaultPlan.nan_burst(0.5, ap="AP2"), seed=5
        )
        result = gate_records(injector.corrupt_batch(lab_records), PACKETS)
        assert result.quality_weights is not None
        assert "AP2" in result.degraded
        assert 0.0 < result.quality_weights["AP2"] < 1.0
        # Untouched links keep full weight.
        assert result.quality_weights["AP3"] == 1.0
        assert 0.0 < result.confidence < 1.0

    def test_rejected_link_drops_anchor(self, lab_records):
        injector = LinkFaultInjector(
            LinkFaultPlan.outage(1.0, ap="AP3"), seed=5
        )
        result = gate_records(injector.corrupt_batch(lab_records), PACKETS)
        assert "AP3" in result.rejected
        assert all(a.name != "AP3" for a in result.anchors)
        assert len(result.anchors) == len(lab_records) - 1

    def test_reasons_union_is_sorted_and_deduped(self, lab_records):
        injector = LinkFaultInjector(LinkFaultPlan.nan_burst(0.5), seed=5)
        result = gate_records(injector.corrupt_batch(lab_records), PACKETS)
        assert result.reasons == tuple(sorted(set(result.reasons)))
        assert "non-finite-csi" in result.reasons

    def test_empty_gate(self):
        result = GateResult((), None, ())
        assert result.confidence == 0.0


class TestGuardedSystem:
    def test_zero_fault_bit_identical(self, lab_system):
        site = lab_system.scenario.test_sites[0]
        ungated = lab_system.locate(site, np.random.default_rng(11))
        guarded = GuardedSystem(lab_system, injector=LinkFaultInjector())
        gated = guarded.locate(site, np.random.default_rng(11))
        assert gated.position.x == ungated.position.x
        assert gated.position.y == ungated.position.y
        assert gated.confidence == 1.0
        assert gated.degradation_reasons == ()

    def test_estimate_carries_degradation(self, lab_system):
        guarded = GuardedSystem(
            lab_system,
            injector=LinkFaultInjector(
                LinkFaultPlan.nan_burst(0.5, ap="AP2"), seed=5
            ),
        )
        site = lab_system.scenario.test_sites[1]
        estimate, gate = guarded.locate_with_result(
            site, np.random.default_rng(11)
        )
        assert estimate.confidence == pytest.approx(gate.confidence)
        assert estimate.confidence < 1.0
        assert "non-finite-csi" in estimate.degradation_reasons
        assert np.isfinite(estimate.position.x)

    def test_all_links_rejected_raises(self, lab_system):
        guarded = GuardedSystem(
            lab_system,
            injector=LinkFaultInjector(LinkFaultPlan.outage(1.0), seed=5),
        )
        site = lab_system.scenario.test_sites[0]
        with pytest.raises(InsufficientLinksError, match="empty-batch"):
            guarded.locate(site, np.random.default_rng(11))

    def test_gating_off_believes_corrupted_links(self, lab_system):
        guarded = GuardedSystem(
            lab_system,
            injector=LinkFaultInjector(
                LinkFaultPlan.nan_burst(0.5, ap="AP2"), seed=5
            ),
            gate=False,
        )
        site = lab_system.scenario.test_sites[0]
        estimate, gate = guarded.locate_with_result(
            site, np.random.default_rng(11)
        )
        # The OFF arm trusts everything it can estimate at full weight.
        assert gate.quality_weights is None
        assert estimate.confidence == 1.0
        assert np.isfinite(estimate.position.x)

    def test_gating_off_drops_unestimable_links(self, lab_system):
        guarded = GuardedSystem(
            lab_system,
            injector=LinkFaultInjector(
                LinkFaultPlan.outage(1.0, ap="AP3"), seed=5
            ),
            gate=False,
        )
        site = lab_system.scenario.test_sites[0]
        _, gate = guarded.locate_with_result(site, np.random.default_rng(11))
        assert any(
            v.name == "AP3" and v.reasons == ("unestimable-batch",)
            for v in gate.verdicts
        )


class TestSelftest:
    def test_drill_passes(self):
        result = run_selftest()
        assert result["passed"]
        names = [c["name"] for c in result["checks"]]
        assert names == [
            "zero-fault-bit-identical",
            "nan-burst-degrades",
            "outage-rejected",
            "phase-smear-salvaged",
        ]
        assert all(c["passed"] for c in result["checks"])
