"""Tests for link quality scoring, verdicts, and their invariants."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.csi import CSIMeasurement
from repro.core import estimate_pdp_batch
from repro.core.pdp import confidence_factor
from repro.guard import (
    GuardConfig,
    LinkFaultInjector,
    LinkFaultPlan,
    LinkStatus,
    assess_link,
)
from tests.guard.conftest import PACKETS


def _nan_packets(record, indices):
    """Copy of ``record`` with the given packets NaN-poisoned."""
    ms = list(record.measurements)
    for i in indices:
        csi = ms[i].csi.copy()
        csi[0] = complex(np.nan, np.nan)
        ms[i] = CSIMeasurement(csi, ms[i].config, ms[i].rssi_dbm)
    return dataclasses.replace(record, measurements=tuple(ms))


class TestGuardConfigValidation:
    def test_defaults_valid(self):
        GuardConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mad_z_threshold": 0.0},
            {"concentration_top_taps": 0},
            {"concentration_min": 1.0},
            {"salvage_concentration_prior": 0.0},
            {"salvage_quality": 1.5},
            {"min_quality": 1.5},
            {"min_clean_packets": 0},
        ],
    )
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)


class TestCleanVerdict:
    def test_ok_at_full_quality(self, lab_records):
        verdict = assess_link(lab_records[0], PACKETS)
        assert verdict.status is LinkStatus.OK
        assert verdict.quality == 1.0
        assert verdict.reasons == ()
        assert verdict.clean_packets == PACKETS
        assert verdict.usable

    def test_pdp_bit_identical_to_ungated_estimator(self, lab_records):
        for record in lab_records:
            verdict = assess_link(record, PACKETS)
            assert verdict.pdp == record.estimate(estimate_pdp_batch)


class TestDegradedVerdicts:
    def test_nan_packets_degrade(self, lab_records):
        record = _nan_packets(lab_records[0], [0, 3])
        verdict = assess_link(record, PACKETS)
        assert verdict.status is LinkStatus.DEGRADED
        assert "non-finite-csi" in verdict.reasons
        assert verdict.quality == (PACKETS - 2) / PACKETS
        assert verdict.usable

    def test_packet_shortfall_degrades(self, lab_records):
        record = dataclasses.replace(
            lab_records[0],
            measurements=lab_records[0].measurements[:8],
        )
        verdict = assess_link(record, PACKETS)
        assert verdict.status is LinkStatus.DEGRADED
        assert "packet-shortfall" in verdict.reasons
        assert verdict.quality == 8 / PACKETS

    def test_mad_outlier_excluded_from_estimate(self, lab_records):
        ms = list(lab_records[0].measurements)
        boosted = ms[4].csi * 1000.0
        ms[4] = CSIMeasurement(boosted, ms[4].config, ms[4].rssi_dbm)
        record = dataclasses.replace(
            lab_records[0], measurements=tuple(ms)
        )
        verdict = assess_link(record, PACKETS)
        assert "pdp-outlier-packets" in verdict.reasons
        assert verdict.status is LinkStatus.DEGRADED
        assert verdict.clean_packets == PACKETS - 1
        # The spike is excluded: the estimate stays near the clean one.
        clean_pdp = assess_link(lab_records[0], PACKETS).pdp
        assert verdict.pdp < 2.0 * clean_pdp


class TestRejectedVerdicts:
    def test_empty_batch_rejected(self, lab_records):
        record = dataclasses.replace(lab_records[0], measurements=())
        verdict = assess_link(record, PACKETS)
        assert verdict.status is LinkStatus.REJECTED
        assert verdict.pdp is None
        assert not verdict.usable
        assert "empty-batch" in verdict.reasons

    def test_too_few_clean_packets(self, lab_records):
        record = _nan_packets(lab_records[0], range(PACKETS - 2))
        verdict = assess_link(record, PACKETS)
        assert verdict.status is LinkStatus.REJECTED
        assert "too-few-clean-packets" in verdict.reasons

    def test_quality_below_floor(self, lab_records):
        record = dataclasses.replace(
            lab_records[0],
            measurements=lab_records[0].measurements[:5],
        )
        verdict = assess_link(record, expected_packets=30)
        assert verdict.status is LinkStatus.REJECTED
        assert "quality-below-floor" in verdict.reasons
        assert verdict.quality == pytest.approx(5 / 30)

class TestSalvagedVerdicts:
    def test_phase_smear_salvaged_as_degraded(self, lab_records):
        injector = LinkFaultInjector(LinkFaultPlan.phase_offset(1.0), seed=3)
        record = injector.corrupt(lab_records[0])
        verdict = assess_link(record, PACKETS)
        assert verdict.status is LinkStatus.DEGRADED
        assert "dispersed-cir-energy" in verdict.reasons
        assert verdict.usable

    def test_salvage_quality_capped(self, lab_records):
        injector = LinkFaultInjector(LinkFaultPlan.phase_offset(1.0), seed=3)
        record = injector.corrupt(lab_records[0])
        verdict = assess_link(record, PACKETS)
        assert verdict.quality <= GuardConfig().salvage_quality

    def test_salvaged_estimate_near_clean(self, lab_records):
        # A phase rotation preserves subcarrier amplitudes, so the
        # energy-based salvage should land within ~2 dB of the clean
        # max-tap estimate (the concentration prior's accuracy band) —
        # while the naive max-tap estimate of the smeared batch sits
        # ~10 dB low.
        injector = LinkFaultInjector(LinkFaultPlan.phase_offset(1.0), seed=3)
        for record in lab_records:
            clean_pdp = assess_link(record, PACKETS).pdp
            verdict = assess_link(injector.corrupt(record), PACKETS)
            ratio_db = 10.0 * np.log10(verdict.pdp / clean_pdp)
            assert abs(ratio_db) < 2.5


class TestQualityScoreMonotonicity:
    """Corrupting strictly more packets never raises the quality score."""

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_superset_corruption_never_scores_higher(self, data, lab_records):
        record = lab_records[0]
        larger = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=PACKETS - 1),
                max_size=PACKETS,
            )
        )
        smaller = (
            data.draw(st.sets(st.sampled_from(sorted(larger))))
            if larger
            else set()
        )
        q_small = assess_link(_nan_packets(record, smaller), PACKETS).quality
        q_large = assess_link(_nan_packets(record, larger), PACKETS).quality
        assert q_large <= q_small

    def test_quality_strictly_decreases_per_packet(self, lab_records):
        record = lab_records[0]
        scores = [
            assess_link(_nan_packets(record, range(k)), PACKETS).quality
            for k in range(PACKETS + 1)
        ]
        assert scores == sorted(scores, reverse=True)
        assert scores[0] == 1.0 and scores[-1] == 0.0


class TestConfidenceFactorProperties:
    """The paper's f (Eq. 4) keeps its Eq. 2-3 contract everywhere."""

    ratios = st.floats(
        min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
    )

    def test_f_of_one_is_exactly_half(self):
        assert confidence_factor(1.0) == 0.5

    @given(ratios)
    @settings(max_examples=200)
    def test_reciprocal_identity(self, x):
        assert confidence_factor(x) + confidence_factor(1.0 / x) == (
            pytest.approx(1.0, abs=1e-12)
        )

    @given(ratios, ratios)
    @settings(max_examples=200)
    def test_monotone_decreasing(self, a, b):
        lo, hi = sorted((a, b))
        assert confidence_factor(lo) >= confidence_factor(hi)

    @given(ratios)
    @settings(max_examples=100)
    def test_open_unit_interval(self, x):
        assert 0.0 < confidence_factor(x) < 1.0

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ValueError):
            confidence_factor(0.0)
