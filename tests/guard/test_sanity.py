"""Tests for the structural CSI batch checks."""

import dataclasses

import numpy as np

from repro.channel.csi import CSIMeasurement
from repro.guard import inspect_batch


def _with_csi(m, csi):
    return CSIMeasurement(csi, m.config, m.rssi_dbm)


class TestCleanBatch:
    def test_all_masks_true(self, lab_records):
        report = inspect_batch(lab_records[0].measurements)
        assert report.packets == len(lab_records[0].measurements)
        assert report.clean.all()
        assert report.issues == ()
        assert report.packet_reasons() == []


class TestPerPacketPredicates:
    def test_nan_packet_flagged_finite_only(self, lab_records):
        ms = list(lab_records[0].measurements)
        csi = ms[2].csi.copy()
        csi[5] = complex(np.nan, np.nan)
        ms[2] = _with_csi(ms[2], csi)
        report = inspect_batch(ms)
        assert not report.finite[2]
        # A non-finite packet must not leak zero/clipping labels too.
        assert report.nonzero[2] and report.unclipped[2]
        assert report.packet_reasons() == ["non-finite-csi"]
        assert report.clean.sum() == len(ms) - 1

    def test_zero_subcarrier_flagged(self, lab_records):
        ms = list(lab_records[0].measurements)
        csi = ms[0].csi.copy()
        csi[7] = 0.0
        ms[0] = _with_csi(ms[0], csi)
        report = inspect_batch(ms)
        assert not report.nonzero[0]
        assert report.packet_reasons() == ["zero-subcarriers"]

    def test_clipped_packet_flagged(self, lab_records):
        ms = list(lab_records[0].measurements)
        amps = np.abs(ms[1].csi)
        ceiling = 0.3 * float(amps.max())
        csi = ms[1].csi.copy()
        over = amps > ceiling
        csi[over] = csi[over] / amps[over] * ceiling
        ms[1] = _with_csi(ms[1], csi)
        report = inspect_batch(ms)
        assert not report.unclipped[1]
        assert report.packet_reasons() == ["amplitude-clipping"]


class TestBatchLevelIssues:
    def test_empty_batch(self):
        report = inspect_batch([])
        assert report.packets == 0
        assert "empty-batch" in report.issues

    def test_empty_batch_with_budget_is_also_short(self):
        report = inspect_batch([], expected_packets=8)
        assert "empty-batch" in report.issues
        assert "packet-shortfall" in report.issues

    def test_packet_shortfall(self, lab_records):
        ms = list(lab_records[0].measurements)[:4]
        report = inspect_batch(ms, expected_packets=12)
        assert report.issues == ("packet-shortfall",)
        assert report.clean.all()  # survivors are still clean

    def test_mixed_ofdm_config(self, lab_records):
        ms = list(lab_records[0].measurements)
        other = dataclasses.replace(ms[0].config, n_fft=128)
        ms[1] = CSIMeasurement(ms[1].csi, other, ms[1].rssi_dbm)
        report = inspect_batch(ms)
        assert "mixed-ofdm-config" in report.issues
