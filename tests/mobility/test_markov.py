"""Tests for the Markov mobility model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.mobility import MarkovMobilityModel


def sites(n):
    return tuple(Point(float(i), 0.0) for i in range(n))


class TestConstruction:
    def test_default_uniform(self):
        m = MarkovMobilityModel(sites(4))
        np.testing.assert_allclose(m.transition, np.full((4, 4), 0.25))

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            MarkovMobilityModel(())

    def test_bad_matrix_shape(self):
        with pytest.raises(ValueError):
            MarkovMobilityModel(sites(3), np.eye(2))

    def test_rows_must_sum_to_one(self):
        bad = np.array([[0.5, 0.4], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovMobilityModel(sites(2), bad)

    def test_negative_probability_rejected(self):
        bad = np.array([[1.5, -0.5], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovMobilityModel(sites(2), bad)


class TestWalk:
    def test_walk_length_and_start(self):
        m = MarkovMobilityModel(sites(4))
        walk = m.walk(10, np.random.default_rng(0), start=2)
        assert len(walk) == 10
        assert walk[0] == 2
        assert all(0 <= i < 4 for i in walk)

    def test_walk_validation(self):
        m = MarkovMobilityModel(sites(3))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            m.walk(0, rng)
        with pytest.raises(IndexError):
            m.walk(5, rng, start=3)
        with pytest.raises(IndexError):
            m.step(7, rng)

    def test_deterministic_chain(self):
        """A cyclic permutation matrix produces a deterministic tour."""
        p = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]], dtype=float)
        m = MarkovMobilityModel(sites(3), p)
        walk = m.walk(7, np.random.default_rng(0))
        assert walk == [0, 1, 2, 0, 1, 2, 0]

    def test_absorbing_state(self):
        p = np.array([[1.0, 0.0], [0.5, 0.5]])
        m = MarkovMobilityModel(sites(2), p)
        walk = m.walk(20, np.random.default_rng(0), start=0)
        assert all(i == 0 for i in walk)

    def test_reproducible_with_seed(self):
        m = MarkovMobilityModel(sites(4))
        w1 = m.walk(50, np.random.default_rng(9))
        w2 = m.walk(50, np.random.default_rng(9))
        assert w1 == w2

    def test_uniform_walk_visits_all_sites(self):
        m = MarkovMobilityModel(sites(4))
        walk = m.walk(200, np.random.default_rng(1))
        assert set(walk) == {0, 1, 2, 3}


class TestStationary:
    def test_uniform_chain(self):
        m = MarkovMobilityModel(sites(4))
        np.testing.assert_allclose(
            m.stationary_distribution(), np.full(4, 0.25), atol=1e-9
        )

    def test_biased_chain(self):
        p = np.array([[0.9, 0.1], [0.5, 0.5]])
        m = MarkovMobilityModel(sites(2), p)
        pi = m.stationary_distribution()
        np.testing.assert_allclose(pi @ p, pi, atol=1e-9)
        assert pi[0] > pi[1]

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30)
    def test_stationary_fixed_point_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        raw = rng.uniform(0.05, 1.0, size=(n, n))
        p = raw / raw.sum(axis=1, keepdims=True)
        m = MarkovMobilityModel(sites(n), p)
        pi = m.stationary_distribution()
        np.testing.assert_allclose(pi @ p, pi, atol=1e-8)
        assert pi.sum() == pytest.approx(1.0)

    def test_empirical_frequencies_match_stationary(self):
        p = np.array([[0.8, 0.2], [0.3, 0.7]])
        m = MarkovMobilityModel(sites(2), p)
        walk = m.walk(40_000, np.random.default_rng(0))
        freq0 = walk.count(0) / len(walk)
        assert freq0 == pytest.approx(m.stationary_distribution()[0], abs=0.02)
