"""Tests for mobility patterns (future-work extension)."""

import numpy as np
import pytest

from repro.geometry import Point
from repro.mobility import (
    HotspotPattern,
    MarkovMobilityModel,
    MarkovPattern,
    PatrolPattern,
    StaticPattern,
    SweepPattern,
)


def RNG():
    return np.random.default_rng(0)


class TestPatrol:
    def test_ping_pong(self):
        p = PatrolPattern(4)
        assert p.generate(10, RNG()) == [0, 1, 2, 3, 2, 1, 0, 1, 2, 3]

    def test_single_site(self):
        assert PatrolPattern(1).generate(3, RNG()) == [0, 0, 0]

    def test_two_sites(self):
        assert PatrolPattern(2).generate(5, RNG()) == [0, 1, 0, 1, 0]


class TestSweep:
    def test_cycle(self):
        assert SweepPattern(3).generate(7, RNG()) == [0, 1, 2, 0, 1, 2, 0]

    def test_covers_all_sites_quickly(self):
        out = SweepPattern(5).generate(5, RNG())
        assert sorted(out) == [0, 1, 2, 3, 4]


class TestStatic:
    def test_stays_home(self):
        assert StaticPattern(4, home=2).generate(6, RNG()) == [2] * 6

    def test_home_validation(self):
        with pytest.raises(IndexError):
            StaticPattern(3, home=3)


class TestHotspot:
    def test_bias_dominates(self):
        p = HotspotPattern(4, hotspot=1, bias=0.8)
        out = p.generate(5000, RNG())
        assert out.count(1) / len(out) == pytest.approx(0.8, abs=0.03)

    def test_validation(self):
        with pytest.raises(IndexError):
            HotspotPattern(3, hotspot=5)
        with pytest.raises(ValueError):
            HotspotPattern(3, bias=1.5)

    def test_single_site(self):
        assert HotspotPattern(1).generate(4, RNG()) == [0, 0, 0, 0]


class TestMarkovPattern:
    def test_wraps_model(self):
        model = MarkovMobilityModel(tuple(Point(i, 0) for i in range(3)))
        p = MarkovPattern(model, start=1)
        out = p.generate(20, np.random.default_rng(5))
        assert out[0] == 1
        assert out == model.walk(20, np.random.default_rng(5), start=1)


class TestCommonValidation:
    @pytest.mark.parametrize(
        "pattern",
        [PatrolPattern(3), SweepPattern(3), StaticPattern(3), HotspotPattern(3)],
    )
    def test_zero_steps_rejected(self, pattern):
        with pytest.raises(ValueError):
            pattern.generate(0, RNG())

    def test_zero_sites_rejected(self):
        with pytest.raises(ValueError):
            PatrolPattern(0)
