"""Tests for position-error injection and mobility traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.mobility import (
    MarkovMobilityModel,
    MobilityTrace,
    PositionErrorModel,
    TraceStep,
    generate_trace,
)


def model(n=4):
    return MarkovMobilityModel(tuple(Point(float(i) * 2, 1.0) for i in range(n)))


class TestPositionErrorModel:
    def test_zero_error_is_identity(self):
        em = PositionErrorModel(0.0)
        p = Point(3, 4)
        assert em.perturb(p, np.random.default_rng(0)) is p

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            PositionErrorModel(-1.0)

    def test_error_bounded_by_range(self):
        em = PositionErrorModel(2.5)
        rng = np.random.default_rng(0)
        p = Point(0, 0)
        for _ in range(500):
            q = em.perturb(p, rng)
            assert p.distance_to(q) <= 2.5 + 1e-12

    def test_mean_error_reasonable_for_uniform_disk(self):
        """Uniform disk of radius R has mean distance 2R/3."""
        em = PositionErrorModel(3.0)
        rng = np.random.default_rng(1)
        p = Point(0, 0)
        dists = [p.distance_to(em.perturb(p, rng)) for _ in range(20_000)]
        assert np.mean(dists) == pytest.approx(2.0, abs=0.05)

    @given(st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=30)
    def test_bound_property(self, er):
        em = PositionErrorModel(er)
        rng = np.random.default_rng(7)
        p = Point(5, -3)
        q = em.perturb(p, rng)
        assert p.distance_to(q) <= er + 1e-12


class TestTraces:
    def test_generate_trace_shape(self):
        trace = generate_trace(model(), 12, np.random.default_rng(0))
        assert len(trace) == 12
        for step in trace:
            assert step.true_position == model().sites[step.site_index]
            assert step.reported_position == step.true_position

    def test_trace_with_errors(self):
        em = PositionErrorModel(1.5)
        trace = generate_trace(model(), 30, np.random.default_rng(0), em)
        errors = [s.report_error_m for s in trace]
        assert max(errors) <= 1.5 + 1e-12
        assert any(e > 0 for e in errors)
        assert trace.mean_report_error_m() == pytest.approx(np.mean(errors))

    def test_visited_site_indices_order(self):
        steps = tuple(
            TraceStep(i, Point(i, 0), Point(i, 0)) for i in (2, 2, 0, 1, 0)
        )
        trace = MobilityTrace(steps)
        assert trace.visited_site_indices() == [2, 0, 1]

    def test_unique_steps_keeps_first_dwell(self):
        p = Point(0, 0)
        steps = (
            TraceStep(1, p, Point(0.1, 0)),
            TraceStep(1, p, Point(0.2, 0)),
            TraceStep(0, p, Point(0.3, 0)),
        )
        unique = MobilityTrace(steps).unique_steps()
        assert [s.site_index for s in unique] == [1, 0]
        assert unique[0].reported_position == Point(0.1, 0)

    def test_empty_trace_mean_error(self):
        assert MobilityTrace(()).mean_report_error_m() == 0.0

    def test_long_walk_visits_all(self):
        trace = generate_trace(model(4), 100, np.random.default_rng(3))
        assert len(trace.visited_site_indices()) == 4
