"""Tests for data-path message types."""

import numpy as np
import pytest

from repro.channel import CSIMeasurement, OFDMConfig
from repro.geometry import Point
from repro.net import CSIReport, LocationFix, ProbePacket


def measurement():
    cfg = OFDMConfig(active_subcarriers=(-1, 1))
    return CSIMeasurement(np.ones(2, dtype=complex), cfg)


class TestMessages:
    def test_probe_packet_fields(self):
        p = ProbePacket(7, 0.125, "alice")
        assert p.seq == 7
        assert p.sent_at == 0.125
        assert p.object_id == "alice"

    def test_csi_report_requires_measurements(self):
        with pytest.raises(ValueError):
            CSIReport(
                ap_name="AP1",
                reported_position=Point(1, 1),
                measurements=(),
                nomadic=False,
                exported_at=0.0,
            )

    def test_csi_report_defaults(self):
        r = CSIReport(
            ap_name="AP1",
            reported_position=Point(1, 1),
            measurements=(measurement(),),
            nomadic=True,
            exported_at=1.5,
        )
        assert r.object_id == "object"
        assert r.nomadic

    def test_location_fix_fields(self):
        fix = LocationFix("bob", Point(2, 3), 4.0, 12, 0.5)
        assert fix.object_id == "bob"
        assert fix.position == Point(2, 3)
        assert fix.num_reports == 12
