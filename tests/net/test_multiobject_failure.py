"""Tests for multi-object localization and AP failure injection."""

import numpy as np
import pytest

from repro.channel import LinkSimulator
from repro.core import NomLocLocalizer
from repro.environment import FloorPlan, get_scenario
from repro.geometry import Point, Polygon
from repro.net import (
    APNode,
    EventSimulator,
    NetworkConfig,
    NomLocNetwork,
    ObjectNode,
    ServerNode,
)


def simple_setup():
    plan = FloorPlan("room", Polygon.rectangle(0, 0, 10, 10))
    sim = EventSimulator()
    link = LinkSimulator(plan)
    server = ServerNode(NomLocLocalizer(plan.boundary))
    config = NetworkConfig(ping_interval_s=1e-3, batch_size=5, packet_loss=0.0)
    return plan, sim, link, server, config


class TestMultiObject:
    def test_server_separates_objects(self):
        plan, sim, link, server, config = simple_setup()
        rng = np.random.default_rng(0)
        obj_a = ObjectNode(sim, Point(2, 2), config, "alice")
        obj_b = ObjectNode(sim, Point(8, 8), config, "bob")
        aps = [
            APNode(sim, f"AP{i}", pos, link, server, config,
                   np.random.default_rng(i))
            for i, pos in enumerate(
                [Point(0.5, 0.5), Point(9.5, 0.5), Point(9.5, 9.5), Point(0.5, 9.5)]
            )
        ]
        for obj in (obj_a, obj_b):
            for ap in aps:
                obj.register_ap(ap)
            obj.start()
        sim.run(until=0.1)
        for ap in aps:
            ap.flush()
        sim.run(until=0.2)

        assert set(server.known_objects()) == {"alice", "bob"}
        fix_a = server.produce_fix(sim.now, "alice")
        fix_b = server.produce_fix(sim.now, "bob")
        # Each fix lands near its own object, not the other one.
        assert fix_a.position.distance_to(Point(2, 2)) < 3.0
        assert fix_b.position.distance_to(Point(8, 8)) < 3.0
        assert fix_a.position.distance_to(Point(8, 8)) > 3.0

    def test_network_add_object(self):
        scen = get_scenario("lab")
        net = NomLocNetwork(
            scen,
            scen.test_sites[0],
            NetworkConfig(ping_interval_s=2e-3, batch_size=5, dwell_time_s=0.05),
            seed=2,
        )
        second = scen.test_sites[4]
        net.add_object(second, "second")
        net.run(0.3)
        fix2 = net.fix_for("second")
        assert fix2.object_id == "second"
        assert fix2.position.distance_to(second) < 6.0

    def test_duplicate_object_id_rejected(self):
        scen = get_scenario("lab")
        net = NomLocNetwork(scen, scen.test_sites[0])
        with pytest.raises(ValueError):
            net.add_object(scen.test_sites[1], "object")


class TestAPFailure:
    def test_failed_ap_stops_reporting(self):
        plan, sim, link, server, config = simple_setup()
        obj = ObjectNode(sim, Point(5, 5), config)
        ap = APNode(
            sim, "AP1", Point(1, 1), link, server, config,
            np.random.default_rng(0),
        )
        obj.register_ap(ap)
        obj.start()
        sim.run(until=0.05)
        heard_before = ap.probes_heard
        assert heard_before > 0
        ap.fail()
        sim.run(until=0.1)
        assert ap.probes_heard == heard_before  # deaf while down
        ap.flush()
        sim.run(until=0.15)
        reports_at_failure = len(server.reports)
        ap.recover()
        sim.run(until=0.2)
        ap.flush()
        sim.run(until=0.25)
        assert ap.probes_heard > heard_before
        assert len(server.reports) > reports_at_failure

    def test_localization_survives_one_ap_down(self):
        """Graceful degradation: 3 of 4 APs still produce a usable fix."""
        plan, sim, link, server, config = simple_setup()
        obj = ObjectNode(sim, Point(3, 7), config)
        aps = [
            APNode(sim, f"AP{i}", pos, link, server, config,
                   np.random.default_rng(i))
            for i, pos in enumerate(
                [Point(0.5, 0.5), Point(9.5, 0.5), Point(9.5, 9.5), Point(0.5, 9.5)]
            )
        ]
        aps[1].fail()  # AP at (9.5, 0.5) dies before the campaign
        for ap in aps:
            obj.register_ap(ap)
        obj.start()
        sim.run(until=0.1)
        for ap in aps:
            ap.flush()
        sim.run(until=0.2)
        fix = server.produce_fix(sim.now)
        assert server.distinct_sources() == 3
        assert fix.position.distance_to(Point(3, 7)) < 4.0

    def test_pending_batch_lost_on_failure(self):
        plan, sim, link, server, config = simple_setup()
        config = NetworkConfig(ping_interval_s=1e-3, batch_size=1000, packet_loss=0.0)
        obj = ObjectNode(sim, Point(5, 5), config)
        ap = APNode(
            sim, "AP1", Point(1, 1), link, server, config,
            np.random.default_rng(0),
        )
        obj.register_ap(ap)
        obj.start()
        sim.run(until=0.02)  # measurements accumulate, batch never fills
        ap.fail()
        ap.flush()
        sim.run(until=0.1)
        assert server.reports == []  # the un-exported batch died with the AP
