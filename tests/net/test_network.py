"""Integration tests for the NomLoc network data path."""

import numpy as np
import pytest

from repro.channel import LinkSimulator
from repro.core import NomLocLocalizer
from repro.environment import FloorPlan, get_scenario
from repro.geometry import Point, Polygon
from repro.mobility import MarkovMobilityModel, PositionErrorModel
from repro.net import (
    APNode,
    EventSimulator,
    NetworkConfig,
    NomadicAPNode,
    NomLocNetwork,
    ObjectNode,
    ServerNode,
)


class TestNetworkConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(ping_interval_s=0)
        with pytest.raises(ValueError):
            NetworkConfig(batch_size=0)
        with pytest.raises(ValueError):
            NetworkConfig(packet_loss=1.0)
        with pytest.raises(ValueError):
            NetworkConfig(report_latency_s=-1)
        with pytest.raises(ValueError):
            NetworkConfig(dwell_time_s=0)


def tiny_setup(packet_loss=0.0):
    plan = FloorPlan("room", Polygon.rectangle(0, 0, 10, 10))
    sim = EventSimulator()
    link = LinkSimulator(plan)
    server = ServerNode(NomLocLocalizer(plan.boundary))
    config = NetworkConfig(
        ping_interval_s=1e-3, batch_size=5, packet_loss=packet_loss
    )
    rng = np.random.default_rng(0)
    return plan, sim, link, server, config, rng


class TestDataPath:
    def test_object_ap_server_flow(self):
        plan, sim, link, server, config, rng = tiny_setup()
        obj = ObjectNode(sim, Point(3, 3), config)
        ap = APNode(sim, "AP1", Point(1, 1), link, server, config, rng)
        obj.register_ap(ap)
        obj.start()
        sim.run(until=0.05)  # 50 pings
        obj.stop()
        ap.flush()
        sim.run(until=0.2)
        assert obj.probes_sent >= 50
        assert ap.probes_heard == obj.probes_sent
        assert server.reports
        total = sum(len(r.measurements) for r in server.reports)
        assert total == ap.probes_heard

    def test_packet_loss(self):
        plan, sim, link, server, config, rng = tiny_setup(packet_loss=0.5)
        obj = ObjectNode(sim, Point(3, 3), config)
        ap = APNode(sim, "AP1", Point(1, 1), link, server, config, rng)
        obj.register_ap(ap)
        obj.start()
        sim.run(until=0.2)  # 200 pings
        assert 0 < ap.probes_heard < obj.probes_sent
        assert ap.probes_heard + ap.probes_lost == obj.probes_sent
        assert ap.probes_lost == pytest.approx(obj.probes_sent / 2, rel=0.3)

    def test_nomadic_ap_moves_and_tags_sites(self):
        plan, sim, link, server, config, rng = tiny_setup()
        config = NetworkConfig(
            ping_interval_s=1e-3, batch_size=5, dwell_time_s=0.02, packet_loss=0.0
        )
        mobility = MarkovMobilityModel(
            (Point(1, 1), Point(5, 1), Point(9, 1), Point(5, 9))
        )
        obj = ObjectNode(sim, Point(5, 5), config)
        nomadic = NomadicAPNode(
            sim, "AP1", mobility, link, server, config, rng
        )
        obj.register_ap(nomadic)
        obj.start()
        nomadic.start_moving()
        sim.run(until=0.5)
        obj.stop()
        nomadic.stop_moving()
        nomadic.flush()
        sim.run(until=0.6)
        assert nomadic.moves >= 10
        names = {r.ap_name for r in server.reports}
        assert len(names) >= 2  # reports from at least two distinct sites
        assert all(n.startswith("AP1@s") for n in names)

    def test_nomadic_position_error_on_reports(self):
        plan, sim, link, server, config, rng = tiny_setup()
        config = NetworkConfig(dwell_time_s=0.02, batch_size=3, packet_loss=0.0)
        mobility = MarkovMobilityModel((Point(2, 2), Point(8, 8)))
        obj = ObjectNode(sim, Point(5, 5), config)
        nomadic = NomadicAPNode(
            sim,
            "AP1",
            mobility,
            link,
            server,
            config,
            rng,
            error_model=PositionErrorModel(1.0),
        )
        obj.register_ap(nomadic)
        obj.start()
        nomadic.start_moving()
        sim.run(until=0.2)
        nomadic.flush()
        sim.run(until=0.3)
        true_sites = set(mobility.sites)
        reported = {r.reported_position for r in server.reports}
        assert any(p not in true_sites for p in reported)
        for p in reported:
            assert min(p.distance_to(s) for s in true_sites) <= 1.0 + 1e-9


class TestNomLocNetwork:
    def test_end_to_end_fix(self):
        scen = get_scenario("lab")
        target = scen.test_sites[2]
        net = NomLocNetwork(
            scen,
            target,
            NetworkConfig(
                ping_interval_s=2e-3, batch_size=5, dwell_time_s=0.05
            ),
            seed=1,
        )
        fix = net.run(duration_s=0.4)
        assert scen.plan.contains(fix.position)
        assert fix.num_reports > 0
        assert fix.position.distance_to(target) < 6.0
        # The server heard from the statics and several nomadic sites.
        assert net.server.distinct_sources() >= 4

    def test_duration_validation(self):
        scen = get_scenario("lab")
        net = NomLocNetwork(scen, scen.test_sites[0])
        with pytest.raises(ValueError):
            net.run(0.0)

    def test_deterministic_given_seed(self):
        scen = get_scenario("lab")
        target = scen.test_sites[0]
        cfg = NetworkConfig(ping_interval_s=5e-3, batch_size=5, dwell_time_s=0.1)
        fix1 = NomLocNetwork(scen, target, cfg, seed=3).run(0.3)
        fix2 = NomLocNetwork(scen, target, cfg, seed=3).run(0.3)
        assert fix1.position == fix2.position
