"""Tests for the discrete-event simulator."""

import pytest

from repro.net import EventSimulator


class TestEventSimulator:
    def test_time_ordering(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_ties(self):
        sim = EventSimulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = EventSimulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_run_until(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_self_rescheduling(self):
        sim = EventSimulator()
        count = [0]

        def tick():
            count[0] += 1
            sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run(until=10.5)
        assert count[0] == 11  # t = 0..10

    def test_cancel(self):
        sim = EventSimulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(handle)
        sim.run()
        assert fired == []
        assert sim.pending() == 0

    def test_negative_delay_rejected(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = EventSimulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_runaway_guard(self):
        sim = EventSimulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = EventSimulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestSimulatorProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_random_schedules_fire_in_time_order(self, delays):
        sim = EventSimulator()
        fired = []
        for i, d in enumerate(delays):
            sim.schedule(d, lambda i=i, d=d: fired.append((sim.now, i)))
        sim.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)
        # Equal-delay events keep their scheduling order.
        by_time: dict[float, list[int]] = {}
        for t, i in fired:
            by_time.setdefault(t, []).append(i)
        for ids in by_time.values():
            assert ids == sorted(ids)
