"""Tests for moving objects and streaming fixes in the event simulation."""

import numpy as np
import pytest

from repro.environment import get_scenario
from repro.geometry import Point
from repro.net import MovingObjectNode, NetworkConfig, NomLocNetwork
from repro.net.simulator import EventSimulator
from repro.tracking import Trajectory, waypoint_trajectory


@pytest.fixture
def trajectory():
    return waypoint_trajectory(
        [Point(1.5, 1.5), Point(9.0, 1.5), Point(9.0, 7.0)],
        speed_mps=1.5,
        sample_interval_s=0.5,
    )


class TestMovingObjectNode:
    def test_position_interpolation(self):
        sim = EventSimulator()
        traj = Trajectory(
            (0.0, 2.0, 4.0),
            (Point(0, 0), Point(4, 0), Point(4, 4)),
        )
        node = MovingObjectNode(sim, traj, NetworkConfig())
        assert node.position_at(0.0) == Point(0, 0)
        assert node.position_at(1.0).almost_equals(Point(2, 0))
        assert node.position_at(3.0).almost_equals(Point(4, 2))
        # Clamped outside the trajectory span.
        assert node.position_at(-1.0) == Point(0, 0)
        assert node.position_at(99.0) == Point(4, 4)

    def test_probe_log_follows_trajectory(self, trajectory):
        scen = get_scenario("lab")
        net = NomLocNetwork(
            scen,
            scen.test_sites[0],
            NetworkConfig(ping_interval_s=0.05, batch_size=5),
            seed=0,
        )
        mover = net.add_moving_object(trajectory, "walker")
        net.run(duration_s=2.0)
        assert len(mover.probe_log) > 10
        for t, pos in mover.probe_log:
            expected = mover.position_at(t)
            assert pos.almost_equals(expected)


class TestStreamingFixes:
    def test_fix_stream_produced(self, trajectory):
        scen = get_scenario("lab")
        # A moving object defeats the trace cache (every probe is from a
        # new position), so keep the ping rate modest in tests.
        cfg = NetworkConfig(ping_interval_s=0.02, batch_size=5, dwell_time_s=0.5)
        net = NomLocNetwork(scen, scen.test_sites[0], cfg, seed=3)
        mover = net.add_moving_object(trajectory, "walker")
        fixes = net.run_streaming(
            duration_s=trajectory.duration_s,
            fix_interval_s=1.0,
            window_s=1.5,
            object_id="walker",
        )
        assert len(fixes) >= 5
        times = [f.produced_at for f in fixes]
        assert times == sorted(times)
        errors = [
            f.position.distance_to(mover.position_at(f.produced_at))
            for f in fixes
        ]
        # Real-time tracking of a walker through the lossy data path:
        # meter-scale with some lag.
        assert np.mean(errors) < 4.0

    def test_window_keeps_fixes_fresh(self, trajectory):
        """A windowed fix tracks better than one over all history."""
        scen = get_scenario("lab")
        cfg = NetworkConfig(ping_interval_s=0.02, batch_size=5, dwell_time_s=0.5)

        net = NomLocNetwork(scen, scen.test_sites[0], cfg, seed=3)
        mover = net.add_moving_object(trajectory, "walker")
        net.run(duration_s=trajectory.duration_s)
        end_truth = mover.position_at(trajectory.duration_s)
        # All-history fix vs trailing-window fix at the end of the walk.
        stale = net.server.produce_fix(net.sim.now, "walker")
        fresh = net.server.produce_fix(net.sim.now, "walker", window_s=1.5)
        assert fresh.position.distance_to(end_truth) <= (
            stale.position.distance_to(end_truth) + 0.5
        )

    def test_validation(self):
        scen = get_scenario("lab")
        net = NomLocNetwork(scen, scen.test_sites[0])
        with pytest.raises(ValueError):
            net.run_streaming(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            net.run_streaming(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            net.run_streaming(1.0, 1.0, 0.0)

    def test_duplicate_moving_object_rejected(self, trajectory):
        scen = get_scenario("lab")
        net = NomLocNetwork(scen, scen.test_sites[0])
        with pytest.raises(ValueError):
            net.add_moving_object(trajectory, "object")
