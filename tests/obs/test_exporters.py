"""JSONL export round-trips; aggregation matches numpy percentiles."""

import io

import numpy as np

from repro.obs import (
    SpanAggregator,
    Tracer,
    aggregate,
    dump_jsonl,
    format_stage_table,
    load_jsonl,
    write_jsonl,
)


def _sample_spans():
    tracer = Tracer()
    with tracer.start("outer", query="q1") as outer:
        outer.incr("rows", 21)
        with tracer.start("inner"):
            pass
        with tracer.start("inner"):
            pass
    return tracer.finished()


class TestJSONL:
    def test_file_round_trip(self, tmp_path):
        spans = _sample_spans()
        path = tmp_path / "traces.jsonl"
        assert dump_jsonl(spans, path) == len(spans)
        loaded = load_jsonl(path)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in spans]

    def test_stream_is_one_record_per_line(self):
        spans = _sample_spans()
        buffer = io.StringIO()
        write_jsonl(spans, buffer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == len(spans)

    def test_blank_lines_ignored(self, tmp_path):
        spans = _sample_spans()
        path = tmp_path / "traces.jsonl"
        dump_jsonl(spans, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == len(spans)


class TestAggregation:
    def test_counts_and_totals(self):
        spans = _sample_spans()
        snap = aggregate(spans)
        assert snap["inner"]["count"] == 2
        assert snap["outer"]["count"] == 1
        assert snap["outer"]["counters"] == {"rows": 21.0}
        assert snap["outer"]["total_s"] >= snap["inner"]["total_s"]

    def test_percentiles_match_numpy(self):
        durations = [0.001, 0.005, 0.002, 0.009, 0.004, 0.007, 0.003]
        agg = SpanAggregator()
        for d in durations:
            tracer = Tracer()
            with tracer.start("stage") as sp:
                pass
            sp.duration_s = d
            agg.add(sp)
        row = agg.snapshot()["stage"]
        assert row["p50_s"] == float(np.percentile(durations, 50))
        assert row["p95_s"] == float(np.percentile(durations, 95))
        assert row["mean_s"] == float(np.mean(durations))

    def test_empty_aggregator(self):
        assert SpanAggregator().snapshot() == {}
        assert len(SpanAggregator()) == 0


class TestStageTable:
    def test_table_lists_stages_by_total_time(self):
        spans = _sample_spans()
        table = format_stage_table(aggregate(spans))
        lines = table.splitlines()
        assert "stage" in lines[0] and "p95(ms)" in lines[0]
        body = lines[2:]
        assert body[0].startswith("outer")  # outer encloses both inners
        assert any(line.startswith("inner") for line in body)
        assert "rows=21" in table

    def test_empty_table_has_header_only(self):
        table = format_stage_table({})
        assert "stage" in table.splitlines()[0]
        assert len(table.splitlines()) == 2
