"""The instrumentation switch: no-op semantics, pool safety, bit-exactness."""

import numpy as np
import pytest

from repro import obs
from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.serving import LocalizationService, ServingConfig, WorkerPool


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    obs.disable()
    yield
    obs.disable()


def _gather(scenario_name="lab", count=3, packets=4):
    scenario = get_scenario(scenario_name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=packets))
    sets = []
    for i in range(count):
        site = scenario.test_sites[i % len(scenario.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([3, i]))
        sets.append(tuple(system.gather_anchors(site, rng)))
    return scenario, sets


class TestSwitch:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert obs.get_tracer() is None
        assert obs.span("anything") is obs.NULL_SPAN
        assert obs.current_span() is obs.NULL_SPAN

    def test_null_span_is_inert(self):
        with obs.span("x") as sp:
            assert sp.set(a=1) is sp
            assert sp.incr("c", 5) is sp
        obs.add_counter("nothing")  # must not raise while disabled

    def test_enable_disable(self):
        tracer = obs.enable()
        try:
            assert obs.is_enabled()
            assert obs.get_tracer() is tracer
            with obs.span("stage"):
                pass
            assert [s.name for s in tracer.finished()] == ["stage"]
        finally:
            obs.disable()
        assert not obs.is_enabled()

    def test_capture_scopes_and_restores(self):
        outer = obs.enable()
        with obs.capture() as inner:
            assert obs.get_tracer() is inner
            with obs.span("inside"):
                pass
        assert obs.get_tracer() is outer
        assert len(inner.finished()) == 1
        assert len(outer.finished()) == 0

    def test_add_counter_hits_active_span(self):
        with obs.capture() as tracer:
            with obs.span("stage"):
                obs.add_counter("work", 3)
                obs.add_counter("work", 4)
        (finished,) = tracer.finished()
        assert finished.counters == {"work": 7.0}

    def test_add_counter_without_active_span(self):
        with obs.capture():
            obs.add_counter("orphan")  # no active span: silently dropped


class TestWorkerPoolSafety:
    def test_spans_from_pool_workers_all_collected(self):
        def traced_task(i):
            with obs.span("pool.task", index=i) as sp:
                sp.incr("done")
            return i

        with obs.capture() as tracer:
            with WorkerPool(max_workers=4) as pool:
                results = pool.map_ordered(traced_task, range(32))
        assert results == list(range(32))
        spans = [s for s in tracer.finished() if s.name == "pool.task"]
        assert len(spans) == 32
        assert len({s.span_id for s in spans}) == 32
        assert {s.attributes["index"] for s in spans} == set(range(32))

    def test_pooled_service_collects_query_spans(self):
        scenario, anchor_sets = _gather(count=6)
        config = ServingConfig(max_workers=3)
        with obs.capture() as tracer:
            with LocalizationService(
                scenario.plan.boundary, config=config
            ) as service:
                responses = service.batch(anchor_sets)
        assert all(r.ok for r in responses)
        queries = [s for s in tracer.finished() if s.name == "serve.query"]
        assert len(queries) == len(anchor_sets)
        # Each worker-thread query span carries the queue-wait/compute
        # split and parents that thread's lp.solve spans.
        for q in queries:
            assert "queue_wait_s" in q.attributes
            assert q.attributes["compute_s"] > 0.0
        solve_parents = {
            s.parent_id
            for s in tracer.finished()
            if s.name == "lp.solve"
        }
        assert solve_parents <= {q.span_id for q in queries}


class TestBitExactness:
    def test_localizer_identical_with_tracing_on_and_off(self):
        scenario, anchor_sets = _gather(count=4)
        system = NomLocSystem(scenario)
        baseline = [system.locate_from_anchors(a) for a in anchor_sets]
        with obs.capture() as tracer:
            traced = [system.locate_from_anchors(a) for a in anchor_sets]
        assert len(tracer.finished()) > 0  # tracing actually ran
        for off, on in zip(baseline, traced):
            assert on.position == off.position
            assert on.relaxation_cost == off.relaxation_cost
            assert on.num_constraints == off.num_constraints

    def test_measurement_identical_with_tracing_on_and_off(self):
        scenario = get_scenario("lab")
        system = NomLocSystem(scenario, SystemConfig(packets_per_link=4))
        site = scenario.test_sites[0]
        rng = np.random.default_rng(42)
        baseline = system.locate(site, rng)
        rng = np.random.default_rng(42)
        with obs.capture():
            traced = system.locate(site, rng)
        assert traced.position == baseline.position

    def test_service_snapshot_gains_spans_only_when_enabled(self):
        scenario, anchor_sets = _gather(count=2)
        with LocalizationService(scenario.plan.boundary) as service:
            service.batch(anchor_sets)
            assert "spans" not in service.metrics_snapshot()
            with obs.capture():
                service.batch(anchor_sets)
                snap = service.metrics_snapshot()
        assert "serve.query" in snap["spans"]
        assert "lp.solve" in snap["spans"]
        assert snap["spans"]["serve.query"]["count"] == len(anchor_sets)
