"""Span names emitted by the batched locate pipeline.

The per-stage aggregation in benchmarks and the profiler groups spans by
name, so the batched entry points must keep their names disjoint from the
scalar path's: ``locate_batch`` owns ``lp.solve_batch`` while
``solve_pieces_batch`` owns ``lp.solve_pieces`` — the two carry different
attribute sets and folding them under one name would corrupt any
aggregate.  These tests pin the name partition and the counters each
stage reports.
"""

import numpy as np

from repro.core import NomLocLocalizer, NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.obs import capture


def lobby_queries(count=3, seed=23):
    scenario = get_scenario("lobby")
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=6))
    sites = scenario.test_sites
    queries = []
    for i in range(count):
        rng = np.random.default_rng(np.random.SeedSequence([seed, i]))
        queries.append(system.gather_anchors(sites[i % len(sites)], rng))
    return scenario, queries


class TestPipelineSpanNames:
    def test_locate_batch_stage_names(self):
        scenario, queries = lobby_queries()
        localizer = NomLocLocalizer(scenario.plan.boundary)
        with capture() as tracer:
            localizer.locate_batch(queries)
        names = {s.name for s in tracer.finished()}
        assert {
            "constraints.build_batch",
            "lp.solve_batch",
            "geometry.batch",
            "merge",
        } <= names
        # The batch entry points never route through the scalar stages
        # (and never borrow their names).
        assert "lp.solve" not in names
        assert "lp.solve_pieces" not in names
        assert "constraints.build_shared" not in names

    def test_solve_pieces_batch_has_its_own_name(self):
        scenario, queries = lobby_queries(count=1)
        localizer = NomLocLocalizer(scenario.plan.boundary)
        shared = localizer.build_shared_constraints(queries[0])
        with capture() as tracer:
            localizer.solve_pieces_batch(range(len(localizer.pieces)), shared)
        names = {s.name for s in tracer.finished()}
        assert "lp.solve_pieces" in names
        assert "lp.solve_batch" not in names
        assert "lp.solve" not in names

    def test_scalar_locate_keeps_scalar_names(self):
        scenario, queries = lobby_queries(count=1)
        localizer = NomLocLocalizer(scenario.plan.boundary)
        with capture() as tracer:
            localizer.locate(queries[0])
        names = {s.name for s in tracer.finished()}
        assert {"constraints.build_shared", "lp.solve", "merge"} <= names
        assert "lp.solve_batch" not in names
        assert "lp.solve_pieces" not in names

    def test_batch_span_counters(self):
        scenario, queries = lobby_queries()
        localizer = NomLocLocalizer(scenario.plan.boundary)
        with capture() as tracer:
            estimates = localizer.locate_batch(queries)
        by_name = {}
        for s in tracer.finished():
            by_name.setdefault(s.name, []).append(s)
        [solve] = by_name["lp.solve_batch"]
        assert solve.attributes["queries"] == len(queries)
        assert solve.attributes["pieces"] == len(localizer.pieces)
        assert solve.counters["rows"] > 0
        [geom] = by_name["geometry.batch"]
        winners = geom.counters["winners"]
        lazy = geom.counters.get("lazy", 0.0)
        total_pieces = sum(len(est.pieces) for est in estimates)
        assert winners + lazy == total_pieces
        assert winners >= len(queries)  # every query has >= 1 winner
