"""The ``profile_scenario`` engine behind ``repro profile``."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _tracing_off():
    obs.disable()
    yield
    obs.disable()


class TestProfileScenario:
    def test_covers_every_pipeline_stage(self):
        result = obs.profile_scenario("lab", queries=3, packets=4)
        names = {s.name for s in result.spans}
        for required in (
            "csi.synthesize",
            "cir.delay_profile",
            "constraints.build_shared",
            "constraints.pairwise",
            "lp.solve",
            "merge",
            "serve.query",
        ):
            assert required in names, f"missing stage span {required}"

    def test_reproducible_and_bounded(self):
        first = obs.profile_scenario("lab", queries=2, packets=4, seed=5)
        second = obs.profile_scenario("lab", queries=2, packets=4, seed=5)
        assert first.errors_m == second.errors_m
        assert len(first.errors_m) == 2
        assert all(e >= 0.0 for e in first.errors_m)

    def test_metrics_include_span_aggregates(self):
        result = obs.profile_scenario("lab", queries=2, packets=4)
        assert result.metrics["completed"] == 2
        assert "lp.solve" in result.metrics["spans"]
        stages = result.stages()
        assert stages["serve.query"]["count"] == 2

    def test_leaves_tracing_disabled(self):
        obs.profile_scenario("lab", queries=1, packets=4)
        assert not obs.is_enabled()

    def test_rejects_bad_query_count(self):
        with pytest.raises(ValueError):
            obs.profile_scenario("lab", queries=0)
