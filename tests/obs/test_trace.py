"""Span/Tracer core: nesting, attributes, counters, thread isolation."""

import threading

import pytest

from repro.obs import Span, Tracer


class TestSpanNesting:
    def test_single_span_is_root(self):
        tracer = Tracer()
        with tracer.start("outer") as sp:
            assert tracer.current() is sp
        assert tracer.current() is None
        (finished,) = tracer.finished()
        assert finished.name == "outer"
        assert finished.parent_id is None
        assert finished.duration_s >= 0.0

    def test_nested_spans_parent_correctly(self):
        tracer = Tracer()
        with tracer.start("a") as a:
            with tracer.start("b") as b:
                with tracer.start("c") as c:
                    assert tracer.current() is c
                assert tracer.current() is b
            assert tracer.current() is a
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["a"].parent_id is None
        assert by_name["b"].parent_id == by_name["a"].span_id
        assert by_name["c"].parent_id == by_name["b"].span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.start("parent") as parent:
            with tracer.start("first"):
                pass
            with tracer.start("second"):
                pass
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["first"].parent_id == parent.span_id
        assert by_name["second"].parent_id == parent.span_id
        assert by_name["first"].span_id != by_name["second"].span_id

    def test_finished_in_completion_order(self):
        tracer = Tracer()
        with tracer.start("outer"):
            with tracer.start("inner"):
                pass
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]

    def test_exception_recorded_and_stack_unwound(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.start("failing"):
                raise ValueError("boom")
        assert tracer.current() is None
        (finished,) = tracer.finished()
        assert finished.attributes["error"] == "ValueError"

    def test_reset_drops_finished(self):
        tracer = Tracer()
        with tracer.start("x"):
            pass
        assert len(tracer) == 1
        tracer.reset()
        assert len(tracer) == 0


class TestSpanData:
    def test_attributes_at_start_and_via_set(self):
        tracer = Tracer()
        with tracer.start("s", piece=3) as sp:
            sp.set(rows=21, degraded=False)
        (finished,) = tracer.finished()
        assert finished.attributes == {
            "piece": 3,
            "rows": 21,
            "degraded": False,
        }

    def test_counters_accumulate(self):
        tracer = Tracer()
        with tracer.start("s") as sp:
            sp.incr("pivots", 10)
            sp.incr("pivots", 5)
            sp.incr("rows")
        (finished,) = tracer.finished()
        assert finished.counters == {"pivots": 15.0, "rows": 1.0}

    def test_to_from_dict_round_trip(self):
        tracer = Tracer()
        with tracer.start("s", piece=1) as sp:
            sp.incr("pivots", 7)
        (finished,) = tracer.finished()
        rebuilt = Span.from_dict(finished.to_dict())
        assert rebuilt.to_dict() == finished.to_dict()


class TestThreadIsolation:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen_parent = {}

        def worker(key):
            with tracer.start(f"root-{key}"):
                seen_parent[key] = tracer.current().parent_id

        with tracer.start("main-root"):
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Worker roots must NOT parent under the main thread's active span.
        assert all(parent is None for parent in seen_parent.values())

    def test_concurrent_span_ids_unique(self):
        tracer = Tracer()

        def worker():
            for _ in range(200):
                with tracer.start("w"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.finished()
        assert len(spans) == 8 * 200
        assert len({s.span_id for s in spans}) == len(spans)
