"""``Tracer.adopt``: merging worker-process span batches into a parent."""

from repro.obs import Tracer


def _worker_records(label: str):
    """Simulate one worker: a root span with one nested child."""
    tracer = Tracer()
    with tracer.start("worker.root", label=label) as root:
        root.incr("work", 2.0)
        with tracer.start("worker.child", label=label):
            pass
    return [s.to_dict() for s in tracer.finished()]


class TestAdopt:
    def test_reissues_ids_and_remaps_parents(self):
        parent = Tracer()
        with parent.start("campaign") as campaign:
            adopted = parent.adopt(
                _worker_records("a"), parent_id=campaign.span_id
            )
        by_name = {s.name: s for s in adopted}
        root, child = by_name["worker.root"], by_name["worker.child"]
        assert root.parent_id == campaign.span_id
        assert child.parent_id == root.span_id
        assert root.span_id != child.span_id

    def test_colliding_worker_batches_stay_distinct(self):
        # Both workers number their spans from 1; adopting one batch at a
        # time must still yield globally unique ids and intact links.
        parent = Tracer()
        first = parent.adopt(_worker_records("a"))
        second = parent.adopt(_worker_records("b"))
        ids = [s.span_id for s in first + second]
        assert len(ids) == len(set(ids))
        for batch in (first, second):
            root = next(s for s in batch if s.name == "worker.root")
            child = next(s for s in batch if s.name == "worker.child")
            assert child.parent_id == root.span_id

    def test_roots_stay_roots_without_parent(self):
        parent = Tracer()
        adopted = parent.adopt(_worker_records("a"))
        root = next(s for s in adopted if s.name == "worker.root")
        assert root.parent_id is None

    def test_preserves_payload_and_order(self):
        parent = Tracer()
        records = _worker_records("payload")
        adopted = parent.adopt(records)
        assert [s.name for s in adopted] == [r["name"] for r in records]
        root = next(s for s in adopted if s.name == "worker.root")
        assert root.attributes["label"] == "payload"
        assert root.counters["work"] == 2.0
        assert root.duration_s >= 0.0

    def test_adopted_spans_land_in_finished(self):
        parent = Tracer()
        parent.adopt(_worker_records("a"))
        assert [s.name for s in parent.finished()] == [
            "worker.child",
            "worker.root",
        ]

    def test_empty_batch_is_noop(self):
        parent = Tracer()
        assert parent.adopt([]) == []
        assert len(parent) == 0
