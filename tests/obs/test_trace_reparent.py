"""``Tracer.reparent``: re-homing same-process spans under a new parent."""

import threading

from repro.obs import Tracer


class TestReparent:
    def test_moves_only_the_requested_spans(self):
        tracer = Tracer()
        with tracer.start("route") as route:
            pass
        with tracer.start("attempt.a") as a:
            pass
        with tracer.start("attempt.b") as b:
            pass
        moved = tracer.reparent([a.span_id], route.span_id)
        assert moved == 1
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["attempt.a"].parent_id == route.span_id
        assert by_name["attempt.b"].parent_id is None

    def test_ids_survive_unlike_adopt(self):
        tracer = Tracer()
        with tracer.start("child") as child:
            pass
        tracer.reparent([child.span_id], None)
        assert tracer.finished()[0].span_id == child.span_id

    def test_unknown_ids_move_nothing(self):
        tracer = Tracer()
        with tracer.start("only"):
            pass
        assert tracer.reparent([10**9], None) == 0

    def test_rehomes_cross_thread_roots(self):
        # The hedged-attempt shape: a pool thread's span roots itself on
        # that thread; the caller re-homes it under its own span later.
        tracer = Tracer()
        recorded = {}

        def worker():
            with tracer.start("pool.attempt") as sp:
                recorded["id"] = sp.span_id

        with tracer.start("route") as route:
            t = threading.Thread(target=worker)
            t.start()
            t.join(timeout=5)
        attempt = next(
            s for s in tracer.finished() if s.name == "pool.attempt"
        )
        assert attempt.parent_id is None  # thread-local root at first
        tracer.reparent([recorded["id"]], route.span_id)
        attempt = next(
            s for s in tracer.finished() if s.name == "pool.attempt"
        )
        assert attempt.parent_id == route.span_id
