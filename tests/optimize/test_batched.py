"""Bit-exactness tests for the batched lockstep simplex.

The batched solver's whole contract is that stacking never changes a
single bit of any problem's answer, so every test here compares against
the scalar :func:`~repro.optimize.simplex.simplex_standard_form` (or the
scalar relaxation / localizer built on it) with ``==`` / ``tobytes()``,
never ``approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NomLocLocalizer, NomLocSystem, SystemConfig
from repro.core.relaxation import solve_relaxation, solve_relaxation_batch
from repro.environment import SCENARIOS, get_scenario
from repro.optimize import simplex_standard_form
from repro.optimize.batched import simplex_standard_form_batch
from repro.optimize.linprog import InequalityLP, solve_lp, solve_lp_batch


def assert_bit_identical(scalar, batched):
    """LPResult equality down to the last float bit (NaN-aware)."""
    assert scalar.status == batched.status
    assert scalar.iterations == batched.iterations
    assert scalar.x.tobytes() == batched.x.tobytes()
    if np.isnan(scalar.objective):
        assert np.isnan(batched.objective)
    else:
        assert scalar.objective == batched.objective


def random_problems(rng, batch, m, n, degenerate=False):
    """Same-shape standard-form problems, optionally with zero rows."""
    out = []
    for _ in range(batch):
        a = rng.normal(size=(m, n)).round(2)
        b = rng.normal(size=m).round(2)
        c = rng.normal(size=n).round(2)
        if degenerate and rng.random() < 0.5:
            a[0] = 0.0  # forces either redundancy or infeasibility
        out.append((c, a, b))
    return out


class TestStackedStandardForm:
    def test_mixed_statuses_match_scalar(self):
        # Degenerate rows steer individual problems into INFEASIBLE /
        # redundant-constraint territory while their batch mates stay
        # OPTIMAL — each lane must still match its own scalar run.
        rng = np.random.default_rng(3)
        for trial in range(20):
            m = int(rng.integers(1, 7))
            n = int(rng.integers(m, m + 6))
            problems = random_problems(
                rng, int(rng.integers(2, 8)), m, n, degenerate=True
            )
            batched = simplex_standard_form_batch(problems)
            statuses = set()
            for (c, a, b), res in zip(problems, batched):
                assert_bit_identical(simplex_standard_form(c, a, b), res)
                statuses.add(res.status)

    def test_unbounded_lane_among_optimal(self):
        c_opt = np.array([1.0, 1.0, 0.0])
        a = np.array([[1.0, -1.0, 1.0]])
        b = np.array([1.0])
        c_unb = np.array([-1.0, 0.0, 0.0])  # x0 can grow along a ray
        a_unb = np.array([[0.0, 1.0, 1.0]])
        problems = [(c_opt, a, b), (c_unb, a_unb, b), (c_opt, a, b)]
        batched = simplex_standard_form_batch(problems)
        for (c, a_eq, b_eq), res in zip(problems, batched):
            assert_bit_identical(simplex_standard_form(c, a_eq, b_eq), res)

    def test_shape_mismatch_rejected(self):
        p1 = (np.zeros(3), np.ones((2, 3)), np.ones(2))
        p2 = (np.zeros(4), np.ones((2, 4)), np.ones(2))
        with pytest.raises(ValueError, match="same-shape"):
            simplex_standard_form_batch([p1, p2])

    def test_empty_batch(self):
        assert simplex_standard_form_batch([]) == []

    def test_singleton_batch_is_scalar_path(self):
        rng = np.random.default_rng(11)
        (problem,) = random_problems(rng, 1, 3, 5)
        c, a, b = problem
        assert_bit_identical(
            simplex_standard_form(c, a, b),
            simplex_standard_form_batch([problem])[0],
        )

    def test_budget_exhaustion_matches_scalar(self):
        rng = np.random.default_rng(5)
        problems = random_problems(rng, 4, 4, 6)
        for budget in (1, 2, 5):
            batched = simplex_standard_form_batch(problems, budget)
            for (c, a, b), res in zip(problems, batched):
                assert_bit_identical(
                    simplex_standard_form(c, a, b, budget), res
                )

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        order=st.permutations(list(range(5))),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_order_never_changes_results(self, seed, order):
        # Lockstep lanes are independent: shuffling the batch must give
        # each problem the exact same bits in its new position.
        rng = np.random.default_rng(seed)
        problems = random_problems(rng, 5, 3, 5, degenerate=True)
        baseline = simplex_standard_form_batch(problems)
        shuffled = simplex_standard_form_batch([problems[i] for i in order])
        for pos, i in enumerate(order):
            assert_bit_identical(baseline[i], shuffled[pos])


class TestStackedInequalityLP:
    def test_matches_scalar_solve(self):
        rng = np.random.default_rng(7)
        m, nv = 5, 3
        problems = []
        for _ in range(6):
            a = rng.normal(size=(m, nv)).round(2)
            x_feas = rng.uniform(0, 2, size=nv)
            b = a @ x_feas + rng.uniform(0.1, 1.0, size=m)
            c = rng.normal(size=nv).round(2)
            nonneg = np.array([True, False, True])
            problems.append(InequalityLP(c, a, b, nonneg))
        batched = solve_lp_batch(problems)
        for lp, res in zip(problems, batched):
            assert_bit_identical(solve_lp(lp.c, lp.a_ub, lp.b_ub, lp.nonneg), res)

    def test_mismatched_masks_rejected(self):
        a = np.ones((2, 2))
        b = np.ones(2)
        c = np.zeros(2)
        p1 = InequalityLP(c, a, b, np.array([True, False]))
        p2 = InequalityLP(c, a, b, np.array([False, True]))
        with pytest.raises(ValueError):
            solve_lp_batch([p1, p2])


def scenario_systems(name, queries=6, seed=17):
    """Per-query constraint systems gathered from one scenario."""
    scenario = get_scenario(name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=6))
    localizer = NomLocLocalizer(scenario.plan.boundary)
    sites = scenario.test_sites
    out = []
    for i in range(queries):
        rng = np.random.default_rng(np.random.SeedSequence([seed, i]))
        anchors = system.gather_anchors(sites[i % len(sites)], rng)
        shared = localizer.build_shared_constraints(anchors)
        for index in range(len(localizer.pieces)):
            out.append(localizer.assemble_piece_system(index, shared))
    return out


class TestBatchedRelaxation:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_all_scenario_topologies_bit_identical(self, name):
        systems = scenario_systems(name)
        batched = solve_relaxation_batch(systems)
        for system, res in zip(systems, batched):
            scalar = solve_relaxation(system)
            assert scalar.feasible_point.tobytes() == res.feasible_point.tobytes()
            assert scalar.slacks.tobytes() == res.slacks.tobytes()
            assert scalar.cost == res.cost

    def test_mixed_sizes_grouped(self):
        # Systems from different scenarios have different row counts;
        # the batch API must regroup internally and still match.
        systems = scenario_systems("lab", queries=3) + scenario_systems(
            "lobby", queries=3
        )
        batched = solve_relaxation_batch(systems)
        for system, res in zip(systems, batched):
            scalar = solve_relaxation(system)
            assert scalar.feasible_point.tobytes() == res.feasible_point.tobytes()
            assert scalar.slacks.tobytes() == res.slacks.tobytes()


class TestLocalizerBatch:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_locate_batch_matches_locate(self, name):
        scenario = get_scenario(name)
        system = NomLocSystem(scenario, SystemConfig(packets_per_link=6))
        localizer = NomLocLocalizer(scenario.plan.boundary)
        sites = scenario.test_sites
        queries = []
        for i in range(8):
            rng = np.random.default_rng(np.random.SeedSequence([23, i]))
            queries.append(system.gather_anchors(sites[i % len(sites)], rng))
        batched = localizer.locate_batch(queries)
        for anchors, est in zip(queries, batched):
            scalar = localizer.locate(anchors)
            assert scalar.position == est.position
            assert scalar.relaxation_cost == est.relaxation_cost
            assert scalar.num_constraints == est.num_constraints
