"""Bit-exactness tests for the batched lockstep simplex.

The batched solver's whole contract is that stacking never changes a
single bit of any problem's answer, so every test here compares against
the scalar :func:`~repro.optimize.simplex.simplex_standard_form` (or the
scalar relaxation / localizer built on it) with ``==`` / ``tobytes()``,
never ``approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NomLocLocalizer, NomLocSystem, SystemConfig
from repro.core.constraints import (
    ConstraintKind,
    ConstraintSystem,
    WeightedConstraint,
)
from repro.core.relaxation import (
    _LARGE_SYSTEM_ROWS,
    solve_relaxation,
    solve_relaxation_batch,
)
from repro.environment import SCENARIOS, get_scenario
from repro.geometry import HalfSpace
from repro.optimize import simplex_standard_form
from repro.optimize.batched import _phase1_tableau_batch, simplex_standard_form_batch
from repro.optimize.linprog import InequalityLP, solve_lp, solve_lp_batch
from repro.optimize.simplex import _phase1_tableau


def assert_bit_identical(scalar, batched):
    """LPResult equality down to the last float bit (NaN-aware)."""
    assert scalar.status == batched.status
    assert scalar.iterations == batched.iterations
    assert scalar.x.tobytes() == batched.x.tobytes()
    if np.isnan(scalar.objective):
        assert np.isnan(batched.objective)
    else:
        assert scalar.objective == batched.objective


def random_problems(rng, batch, m, n, degenerate=False):
    """Same-shape standard-form problems, optionally with zero rows."""
    out = []
    for _ in range(batch):
        a = rng.normal(size=(m, n)).round(2)
        b = rng.normal(size=m).round(2)
        c = rng.normal(size=n).round(2)
        if degenerate and rng.random() < 0.5:
            a[0] = 0.0  # forces either redundancy or infeasibility
        out.append((c, a, b))
    return out


class TestStackedStandardForm:
    def test_mixed_statuses_match_scalar(self):
        # Degenerate rows steer individual problems into INFEASIBLE /
        # redundant-constraint territory while their batch mates stay
        # OPTIMAL — each lane must still match its own scalar run.
        rng = np.random.default_rng(3)
        for trial in range(20):
            m = int(rng.integers(1, 7))
            n = int(rng.integers(m, m + 6))
            problems = random_problems(
                rng, int(rng.integers(2, 8)), m, n, degenerate=True
            )
            batched = simplex_standard_form_batch(problems)
            statuses = set()
            for (c, a, b), res in zip(problems, batched):
                assert_bit_identical(simplex_standard_form(c, a, b), res)
                statuses.add(res.status)

    def test_unbounded_lane_among_optimal(self):
        c_opt = np.array([1.0, 1.0, 0.0])
        a = np.array([[1.0, -1.0, 1.0]])
        b = np.array([1.0])
        c_unb = np.array([-1.0, 0.0, 0.0])  # x0 can grow along a ray
        a_unb = np.array([[0.0, 1.0, 1.0]])
        problems = [(c_opt, a, b), (c_unb, a_unb, b), (c_opt, a, b)]
        batched = simplex_standard_form_batch(problems)
        for (c, a_eq, b_eq), res in zip(problems, batched):
            assert_bit_identical(simplex_standard_form(c, a_eq, b_eq), res)

    def test_shape_mismatch_rejected(self):
        p1 = (np.zeros(3), np.ones((2, 3)), np.ones(2))
        p2 = (np.zeros(4), np.ones((2, 4)), np.ones(2))
        with pytest.raises(ValueError, match="same-shape"):
            simplex_standard_form_batch([p1, p2])

    def test_empty_batch(self):
        assert simplex_standard_form_batch([]) == []

    def test_singleton_batch_is_scalar_path(self):
        rng = np.random.default_rng(11)
        (problem,) = random_problems(rng, 1, 3, 5)
        c, a, b = problem
        assert_bit_identical(
            simplex_standard_form(c, a, b),
            simplex_standard_form_batch([problem])[0],
        )

    def test_budget_exhaustion_matches_scalar(self):
        rng = np.random.default_rng(5)
        problems = random_problems(rng, 4, 4, 6)
        for budget in (1, 2, 5):
            batched = simplex_standard_form_batch(problems, budget)
            for (c, a, b), res in zip(problems, batched):
                assert_bit_identical(
                    simplex_standard_form(c, a, b, budget), res
                )

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        order=st.permutations(list(range(5))),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_order_never_changes_results(self, seed, order):
        # Lockstep lanes are independent: shuffling the batch must give
        # each problem the exact same bits in its new position.
        rng = np.random.default_rng(seed)
        problems = random_problems(rng, 5, 3, 5, degenerate=True)
        baseline = simplex_standard_form_batch(problems)
        shuffled = simplex_standard_form_batch([problems[i] for i in order])
        for pos, i in enumerate(order):
            assert_bit_identical(baseline[i], shuffled[pos])


class TestStackedInequalityLP:
    def test_matches_scalar_solve(self):
        rng = np.random.default_rng(7)
        m, nv = 5, 3
        problems = []
        for _ in range(6):
            a = rng.normal(size=(m, nv)).round(2)
            x_feas = rng.uniform(0, 2, size=nv)
            b = a @ x_feas + rng.uniform(0.1, 1.0, size=m)
            c = rng.normal(size=nv).round(2)
            nonneg = np.array([True, False, True])
            problems.append(InequalityLP(c, a, b, nonneg))
        batched = solve_lp_batch(problems)
        for lp, res in zip(problems, batched):
            assert_bit_identical(solve_lp(lp.c, lp.a_ub, lp.b_ub, lp.nonneg), res)

    def test_mismatched_masks_rejected(self):
        a = np.ones((2, 2))
        b = np.ones(2)
        c = np.zeros(2)
        p1 = InequalityLP(c, a, b, np.array([True, False]))
        p2 = InequalityLP(c, a, b, np.array([False, True]))
        with pytest.raises(ValueError):
            solve_lp_batch([p1, p2])


class TestCrashBasisBatch:
    """The stacked Phase-I builder vs the scalar one, lane by lane.

    The scalar ``_phase1_tableau`` is the reference; the batched builder
    must reproduce every lane's tableau and starting basis exactly, modulo
    all-zero padding columns for lanes needing fewer artificials than the
    batch maximum.
    """

    @staticmethod
    def assert_lane_matches_scalar(tab_k, basis_k, a, b, n):
        scalar_tab, scalar_basis = _phase1_tableau(a, b)
        assert list(basis_k) == scalar_basis
        n_art = scalar_tab.shape[1] - n - 1
        trimmed = np.concatenate([tab_k[:, : n + n_art], tab_k[:, -1:]], axis=1)
        # Constraint rows are byte-identical (incl. signed zeros).
        assert trimmed[:-1].tobytes() == scalar_tab[:-1].tobytes()
        if n_art:
            # Same per-lane subset sums -> same bytes in the objective row.
            assert trimmed[-1].tobytes() == scalar_tab[-1].tobytes()
        else:
            # Fully-crashed lanes: the scalar path negates an empty sum
            # (-0.0) where the batched builder leaves +0.0.  Only the zero
            # sign differs, and the Phase-I driver reads the row solely
            # through ``< -_TOL`` before Phase II overwrites it.
            assert np.array_equal(trimmed[-1], scalar_tab[-1])
            assert not (trimmed[-1] != 0.0).any()
        # Padding columns for shorter lanes must be identically zero so
        # they can never enter the basis or perturb a pivot.
        assert not tab_k[:, n + n_art : -1].any()

    def test_random_mixed_sign_rhs(self):
        rng = np.random.default_rng(29)
        for _ in range(10):
            m = int(rng.integers(1, 6))
            n = int(rng.integers(m, m + 5))
            a_stack = rng.normal(size=(6, m, n)).round(2)
            b_stack = rng.normal(size=(6, m)).round(2)
            tabs, basis = _phase1_tableau_batch(a_stack.copy(), b_stack.copy())
            for k in range(6):
                self.assert_lane_matches_scalar(
                    tabs[k], basis[k], a_stack[k], b_stack[k], n
                )

    def test_relaxation_shape_is_fully_crashed(self):
        # The relaxation LP's standard form is [A | -I | I-slacks]: rows
        # with b >= 0 crash onto their +1 slack column, and negating a
        # b < 0 row flips its -t column to +1 — so every row is covered
        # and no artificial block exists regardless of RHS signs.
        rng = np.random.default_rng(31)
        m = 7
        a_stack = np.stack(
            [
                np.hstack([rng.normal(size=(m, 2)), -np.eye(m), np.eye(m)])
                for _ in range(5)
            ]
        )
        b_stack = rng.normal(size=(5, m))
        tabs, basis = _phase1_tableau_batch(a_stack.copy(), b_stack.copy())
        n = 2 + m + m
        assert tabs.shape == (5, m + 1, n + 1)  # no artificial columns
        assert (basis < n).all()
        # Phase-I objective rows are zero: the phase ends pivot-free.
        assert not (tabs[:, m, :] != 0.0).any()
        for k in range(5):
            self.assert_lane_matches_scalar(
                tabs[k], basis[k], a_stack[k], b_stack[k], n
            )

    def test_mixed_artificial_counts_pad_with_zero_columns(self):
        # Lane 0: [A | I] with b >= 0 -> fully crashed (0 artificials).
        # Lane 1: random normals -> no exact unit columns (3 artificials).
        # Lane 2: [A | I] with one negative RHS -> 1 artificial.
        rng = np.random.default_rng(37)
        base = rng.normal(size=(3, 2)).round(2)
        lane0 = np.hstack([base, np.eye(3)])
        lane1 = rng.normal(size=(3, 5)).round(2)
        lane2 = np.hstack([base, np.eye(3)])
        a_stack = np.stack([lane0, lane1, lane2])
        b_stack = np.array([[1.0, 2.0, 3.0], [1.5, -0.5, 2.0], [1.0, -2.0, 3.0]])
        tabs, basis = _phase1_tableau_batch(a_stack.copy(), b_stack.copy())
        assert tabs.shape[2] == 5 + 3 + 1  # widest lane sets the padding
        for k in range(3):
            self.assert_lane_matches_scalar(
                tabs[k], basis[k], a_stack[k], b_stack[k], 5
            )


def scenario_systems(name, queries=6, seed=17):
    """Per-query constraint systems gathered from one scenario."""
    scenario = get_scenario(name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=6))
    localizer = NomLocLocalizer(scenario.plan.boundary)
    sites = scenario.test_sites
    out = []
    for i in range(queries):
        rng = np.random.default_rng(np.random.SeedSequence([seed, i]))
        anchors = system.gather_anchors(sites[i % len(sites)], rng)
        shared = localizer.build_shared_constraints(anchors)
        for index in range(len(localizer.pieces)):
            out.append(localizer.assemble_piece_system(index, shared))
    return out


class TestBatchedRelaxation:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_all_scenario_topologies_bit_identical(self, name):
        systems = scenario_systems(name)
        batched = solve_relaxation_batch(systems)
        for system, res in zip(systems, batched):
            scalar = solve_relaxation(system)
            assert scalar.feasible_point.tobytes() == res.feasible_point.tobytes()
            assert scalar.slacks.tobytes() == res.slacks.tobytes()
            assert scalar.cost == res.cost

    def test_mixed_sizes_grouped(self):
        # Systems from different scenarios have different row counts;
        # the batch API must regroup internally and still match.
        systems = scenario_systems("lab", queries=3) + scenario_systems(
            "lobby", queries=3
        )
        batched = solve_relaxation_batch(systems)
        for system, res in zip(systems, batched):
            scalar = solve_relaxation(system)
            assert scalar.feasible_point.tobytes() == res.feasible_point.tobytes()
            assert scalar.slacks.tobytes() == res.slacks.tobytes()


def synthetic_system(rng, rows):
    """A feasible hand-built constraint system with an exact row count."""
    target = rng.uniform(2.0, 8.0, size=2)
    constraints = []
    for j in range(rows):
        normal = rng.normal(size=2)
        normal /= np.linalg.norm(normal)
        offset = float(normal @ target + rng.uniform(0.1, 3.0))
        constraints.append(
            WeightedConstraint(
                HalfSpace(float(normal[0]), float(normal[1]), offset),
                weight=float(rng.uniform(0.1, 1.0)),
                kind=ConstraintKind.PAIRWISE,
                label=f"syn-{rows}-{j}",
            )
        )
    return ConstraintSystem(tuple(constraints))


class TestRelaxationBatchEdgeLanes:
    """Grouping edges: the sparse-backend cutoff and singleton groups."""

    def test_large_systems_route_to_sparse_backend_in_place(self):
        # Systems above _LARGE_SYSTEM_ROWS bypass the stacked simplex for
        # the sparse interior-point path; their batch mates still stack.
        # Results land in input order either way and every lane matches
        # its own scalar solve bitwise.
        rng = np.random.default_rng(41)
        small = [synthetic_system(rng, 12) for _ in range(3)]
        large = [
            synthetic_system(rng, _LARGE_SYSTEM_ROWS + 15) for _ in range(2)
        ]
        systems = [small[0], large[0], small[1], large[1], small[2]]
        batched = solve_relaxation_batch(systems)
        for system, res in zip(systems, batched):
            scalar = solve_relaxation(system)
            assert scalar.feasible_point.tobytes() == res.feasible_point.tobytes()
            assert scalar.slacks.tobytes() == res.slacks.tobytes()
            assert scalar.cost == res.cost
            assert res.system is system

    def test_boundary_row_count_stays_on_dense_path(self):
        # Exactly _LARGE_SYSTEM_ROWS rows is NOT "large": the scalar
        # gate is strict (m > cutoff), and the batch must agree or the
        # two paths would diverge bitwise at the boundary.
        rng = np.random.default_rng(43)
        systems = [synthetic_system(rng, _LARGE_SYSTEM_ROWS) for _ in range(2)]
        batched = solve_relaxation_batch(systems)
        for system, res in zip(systems, batched):
            scalar = solve_relaxation(system)
            assert scalar.feasible_point.tobytes() == res.feasible_point.tobytes()
            assert scalar.slacks.tobytes() == res.slacks.tobytes()

    def test_singleton_groups_fall_back_to_scalar(self):
        # Every system has a unique row count, so no group ever stacks;
        # the batch API must quietly become a loop over solve_relaxation.
        rng = np.random.default_rng(47)
        systems = [synthetic_system(rng, rows) for rows in (5, 9, 14, 23)]
        batched = solve_relaxation_batch(systems)
        for system, res in zip(systems, batched):
            scalar = solve_relaxation(system)
            assert scalar.feasible_point.tobytes() == res.feasible_point.tobytes()
            assert scalar.slacks.tobytes() == res.slacks.tobytes()
            assert scalar.cost == res.cost

    def test_empty_system_rejected_before_any_solve(self):
        rng = np.random.default_rng(53)
        systems = [synthetic_system(rng, 4), ConstraintSystem(())]
        with pytest.raises(ValueError, match="empty constraint system"):
            solve_relaxation_batch(systems)


class TestLocalizerBatch:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_locate_batch_matches_locate(self, name):
        scenario = get_scenario(name)
        system = NomLocSystem(scenario, SystemConfig(packets_per_link=6))
        localizer = NomLocLocalizer(scenario.plan.boundary)
        sites = scenario.test_sites
        queries = []
        for i in range(8):
            rng = np.random.default_rng(np.random.SeedSequence([23, i]))
            queries.append(system.gather_anchors(sites[i % len(sites)], rng))
        batched = localizer.locate_batch(queries)
        for anchors, est in zip(queries, batched):
            scalar = localizer.locate(anchors)
            assert scalar.position == est.position
            assert scalar.relaxation_cost == est.relaxation_cost
            assert scalar.num_constraints == est.num_constraints
