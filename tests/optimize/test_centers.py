"""Tests for Chebyshev and analytic centres and the barrier LP solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import HalfSpace, Point, Polygon, intersect_halfspaces
from repro.optimize import (
    LPStatus,
    analytic_center,
    barrier_solve_lp,
    chebyshev_center,
    chebyshev_center_batch,
)


def box_constraints(cx, cy, half):
    """|x - cx| <= half and |y - cy| <= half as (A, b)."""
    a = np.array([[1, 0], [-1, 0], [0, 1], [0, -1]], dtype=float)
    b = np.array([cx + half, -(cx - half), cy + half, -(cy - half)])
    return a, b


class TestChebyshevCenter:
    def test_square(self):
        a, b = box_constraints(2.0, 3.0, 1.5)
        res = chebyshev_center(a, b)
        assert res.ok
        np.testing.assert_allclose(res.x, [2.0, 3.0], atol=1e-7)
        assert res.objective == pytest.approx(1.5)

    def test_triangle_radius(self):
        # Right triangle x >= 0, y >= 0, x + y <= 2: incentre radius 2-sqrt(2).
        a = np.array([[-1, 0], [0, -1], [1, 1]], dtype=float)
        b = np.array([0.0, 0.0, 2.0])
        res = chebyshev_center(a, b)
        assert res.ok
        assert res.objective == pytest.approx(2 - np.sqrt(2), abs=1e-7)

    def test_empty(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([0.0, -1.0])  # x <= 0 and x >= 1
        res = chebyshev_center(a, b)
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        a = np.array([[1.0, 0.0]])  # halfplane: radius unbounded
        res = chebyshev_center(a, np.array([1.0]))
        assert res.status is LPStatus.UNBOUNDED

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            chebyshev_center(np.array([[0.0, 0.0]]), np.array([1.0]))

    def test_flat_region_zero_radius(self):
        # x <= 0 and x >= 0: a line, zero inscribed radius.
        a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([0.0, 0.0, 1.0, 1.0])
        res = chebyshev_center(a, b)
        assert res.ok
        assert res.objective == pytest.approx(0.0, abs=1e-8)


def random_polytope(rng, rows):
    """A bounded polytope with ``rows`` random faces plus a box."""
    centre = rng.uniform(-3, 3, 2)
    a = rng.uniform(-1, 1, size=(rows, 2))
    a[np.linalg.norm(a, axis=1) < 0.2] = [1.0, 0.3]
    b = a @ centre + rng.uniform(0.3, 2.0, size=rows)
    box_a = np.array([[1, 0], [-1, 0], [0, 1], [0, -1]], dtype=float)
    box_b = np.array([8.0, 8.0, 8.0, 8.0])
    return np.vstack([a, box_a]), np.concatenate([b, box_b])


def assert_center_identical(scalar, batched):
    """Chebyshev results equal down to the last bit."""
    assert scalar.status == batched.status
    assert scalar.iterations == batched.iterations
    assert scalar.message == batched.message
    if scalar.x is None:
        assert batched.x is None
    else:
        assert scalar.x.tobytes() == batched.x.tobytes()
    if np.isnan(scalar.objective):
        assert np.isnan(batched.objective)
    else:
        assert scalar.objective == batched.objective


class TestChebyshevCenterBatch:
    """The stacked centre path vs the scalar one, system by system."""

    def test_mixed_shapes_group_and_match_scalar(self):
        rng = np.random.default_rng(61)
        systems = [random_polytope(rng, rows) for rows in (3, 5, 3, 7, 5, 3)]
        batched = chebyshev_center_batch(systems)
        assert len(batched) == len(systems)
        for (a, b), res in zip(systems, batched):
            assert_center_identical(chebyshev_center(a, b), res)

    def test_singleton_group_takes_scalar_path(self):
        rng = np.random.default_rng(67)
        systems = [random_polytope(rng, 4)]
        [res] = chebyshev_center_batch(systems)
        assert_center_identical(chebyshev_center(*systems[0]), res)

    def test_empty_batch(self):
        assert chebyshev_center_batch([]) == []

    def test_constraint_free_lane_short_circuits(self):
        rng = np.random.default_rng(71)
        systems = [
            random_polytope(rng, 4),
            (np.zeros((0, 2)), np.zeros(0)),
            random_polytope(rng, 4),
        ]
        batched = chebyshev_center_batch(systems)
        assert batched[1].status is LPStatus.UNBOUNDED
        for (a, b), res in zip(systems, batched):
            assert_center_identical(chebyshev_center(a, b), res)

    def test_zero_normal_rejected_like_scalar(self):
        good = random_polytope(np.random.default_rng(73), 3)
        bad = (np.array([[0.0, 0.0]]), np.array([1.0]))
        with pytest.raises(ValueError, match="non-zero normals"):
            chebyshev_center_batch([good, bad])

    def test_infeasible_and_unbounded_lanes_match_scalar(self):
        rng = np.random.default_rng(79)
        empty_a = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        empty_b = np.array([0.0, -1.0, 1.0, 1.0])  # x <= 0 and x >= 1
        halfplane = (
            np.array([[1.0, 0.0], [0.5, 0.0], [0.25, 0.0], [2.0, 0.0]]),
            np.array([1.0, 1.0, 1.0, 1.0]),
        )
        systems = [
            random_polytope(rng, 0),
            (empty_a, empty_b),
            halfplane,
            random_polytope(rng, 0),
        ]
        batched = chebyshev_center_batch(systems)
        assert batched[1].status is LPStatus.INFEASIBLE
        assert batched[2].status is LPStatus.UNBOUNDED
        for (a, b), res in zip(systems, batched):
            assert_center_identical(chebyshev_center(a, b), res)


class TestAnalyticCenter:
    def test_square_center(self):
        a, b = box_constraints(0.0, 0.0, 1.0)
        res = analytic_center(a, b)
        assert res.ok
        np.testing.assert_allclose(res.x, [0.0, 0.0], atol=1e-7)

    def test_center_is_interior(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            centre = rng.uniform(-5, 5, 2)
            a = rng.uniform(-1, 1, size=(8, 2))
            norms = np.linalg.norm(a, axis=1)
            a = a[norms > 0.1]
            b = a @ centre + rng.uniform(0.5, 2.0, size=a.shape[0])
            # Bound the region with a big box to guarantee existence.
            box_a, box_b = box_constraints(centre[0], centre[1], 50.0)
            a_all = np.vstack([a, box_a])
            b_all = np.concatenate([b, box_b])
            res = analytic_center(a_all, b_all)
            assert res.ok
            assert np.all(a_all @ res.x < b_all)

    def test_asymmetric_slab_matches_closed_form(self):
        # Region: 0 <= x <= 3 crossed with 0 <= y <= 1.  Analytic centre of a
        # product of intervals is the interval midpoints.
        a = np.array([[1, 0], [-1, 0], [0, 1], [0, -1]], dtype=float)
        b = np.array([3.0, 0.0, 1.0, 0.0])
        res = analytic_center(a, b)
        assert res.ok
        np.testing.assert_allclose(res.x, [1.5, 0.5], atol=1e-6)

    def test_infeasible_region(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.0, -1.0])
        res = analytic_center(a, b)
        assert res.status is LPStatus.INFEASIBLE

    def test_supplied_x0_must_be_interior(self):
        a, b = box_constraints(0.0, 0.0, 1.0)
        res = analytic_center(a, b, x0=np.array([5.0, 5.0]))
        assert res.status is LPStatus.INFEASIBLE

    def test_weighting_pulls_toward_far_faces(self):
        """Centre of x <= 1, -x <= 1, y <= t, -y <= t stays at origin."""
        for t in (0.5, 2.0, 7.0):
            a = np.array([[1, 0], [-1, 0], [0, 1], [0, -1]], dtype=float)
            b = np.array([1.0, 1.0, t, t])
            res = analytic_center(a, b)
            assert res.ok
            np.testing.assert_allclose(res.x, [0.0, 0.0], atol=1e-4)


class TestBarrierLP:
    def test_matches_simplex_on_box(self):
        a, b = box_constraints(0.0, 0.0, 2.0)
        c = np.array([1.0, -1.0])
        res = barrier_solve_lp(c, a, b)
        assert res.ok
        assert res.objective == pytest.approx(-4.0, abs=1e-5)
        np.testing.assert_allclose(res.x, [-2.0, 2.0], atol=1e-4)

    def test_zero_objective_returns_analytic_center(self):
        a, b = box_constraints(1.0, -1.0, 3.0)
        res = barrier_solve_lp(np.zeros(2), a, b)
        assert res.ok
        np.testing.assert_allclose(res.x, [1.0, -1.0], atol=1e-6)

    def test_infeasible_propagates(self):
        a = np.array([[1.0], [-1.0]])
        b = np.array([0.0, -1.0])
        res = barrier_solve_lp(np.array([1.0]), a, b)
        assert res.status is LPStatus.INFEASIBLE

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_bounded_lps(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, size=(6, 2))
        norms = np.linalg.norm(a, axis=1)
        a = a[norms > 0.2]
        centre = rng.uniform(-3, 3, 2)
        b = a @ centre + rng.uniform(0.5, 2.0, size=a.shape[0])
        box_a = np.array([[1, 0], [-1, 0], [0, 1], [0, -1]], dtype=float)
        box_b = np.array([10.0, 10.0, 10.0, 10.0])
        a_all = np.vstack([a, box_a])
        b_all = np.concatenate([b, box_b])
        c = rng.uniform(-1, 1, 2)
        res = barrier_solve_lp(c, a_all, b_all)
        assert res.ok
        assert np.all(a_all @ res.x <= b_all + 1e-6)
        # Cross-check against our simplex.
        from repro.optimize import solve_lp

        ref = solve_lp(c, a_all, b_all)
        assert ref.ok
        assert res.objective == pytest.approx(ref.objective, abs=1e-4)


class TestCentersAgainstGeometry:
    """The LP centres must live inside the exact clipped feasible polygon."""

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_centers_inside_exact_region(self, seed):
        rng = np.random.default_rng(seed)
        bound = Polygon.rectangle(-10, -10, 10, 10)
        halfspaces = []
        target = Point(*rng.uniform(-8, 8, 2))
        for _ in range(5):
            other = Point(*rng.uniform(-9, 9, 2))
            if other.distance_to(target) < 0.3:
                continue
            from repro.geometry import bisector_halfspace

            halfspaces.append(bisector_halfspace(target, other))
        region = intersect_halfspaces(halfspaces, bound)
        assert region is not None  # target is always feasible
        bound_hs = [
            HalfSpace(1, 0, 10),
            HalfSpace(-1, 0, 10),
            HalfSpace(0, 1, 10),
            HalfSpace(0, -1, 10),
        ]
        all_hs = halfspaces + bound_hs
        a = np.array([[h.ax, h.ay] for h in all_hs])
        b = np.array([h.b for h in all_hs])

        cheb = chebyshev_center(a, b)
        assert cheb.ok
        if cheb.objective > 1e-6:
            assert region.contains(Point(*cheb.x))
            ana = analytic_center(a, b)
            assert ana.ok
            assert region.contains(Point(*ana.x))
