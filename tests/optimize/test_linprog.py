"""Tests for the inequality-form LP facade (free variables, slacks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog as scipy_linprog

from repro.optimize import InequalityLP, LPStatus, solve_lp


class TestSolveLP:
    def test_free_variable_negative_optimum(self):
        # min x s.t. -x <= 5  (x >= -5, free) -> x = -5.
        res = solve_lp([1.0], [[-1.0]], [5.0])
        assert res.ok
        assert res.x[0] == pytest.approx(-5.0)

    def test_box_in_2d(self):
        # min x + y over the box [-1, 1]^2 -> (-1, -1).
        a = [[1, 0], [-1, 0], [0, 1], [0, -1]]
        b = [1, 1, 1, 1]
        res = solve_lp([1.0, 1.0], a, b)
        assert res.ok
        np.testing.assert_allclose(res.x, [-1, -1], atol=1e-8)

    def test_nonneg_mask(self):
        # Same box but y >= 0 -> (-1, 0).
        a = [[1, 0], [-1, 0], [0, 1], [0, -1]]
        b = [1, 1, 1, 1]
        res = solve_lp([1.0, 1.0], a, b, nonneg=[False, True])
        assert res.ok
        np.testing.assert_allclose(res.x, [-1, 0], atol=1e-8)

    def test_infeasible(self):
        res = solve_lp([0.0], [[1.0], [-1.0]], [0.0, -1.0])  # x<=0 and x>=1
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        res = solve_lp([1.0], [[1.0]], [0.0])  # min x, x <= 0, x free
        assert res.status is LPStatus.UNBOUNDED

    def test_zero_objective_feasibility_mode(self):
        """The paper's Eq. 12 uses 'minimize 0' as a pure feasibility LP."""
        a = [[1, 0], [-1, 0], [0, 1], [0, -1]]
        res = solve_lp([0.0, 0.0], a, [2, 2, 2, 2])
        assert res.ok
        assert res.objective == pytest.approx(0.0)
        assert np.all(np.asarray(a) @ res.x <= np.array([2, 2, 2, 2]) + 1e-9)

    def test_relaxation_structure(self):
        """Eq. 19 shape: min w.t s.t. A z - t <= b, t >= 0."""
        # One contradictory pair of constraints on scalar z: z <= 0, -z <= -2.
        # Optimal relaxation breaks the cheaper constraint by 2.
        w = np.array([1.0, 10.0])
        a = np.array(
            [
                [1.0, -1.0, 0.0],  # z - t1 <= 0
                [-1.0, 0.0, -1.0],  # -z - t2 <= -2
            ]
        )
        b = np.array([0.0, -2.0])
        c = np.concatenate([[0.0], w])
        res = solve_lp(c, a, b, nonneg=[False, True, True])
        assert res.ok
        z, t1, t2 = res.x
        assert t2 == pytest.approx(0.0, abs=1e-8)  # expensive constraint kept
        assert t1 == pytest.approx(2.0, abs=1e-8)  # cheap one relaxed by 2
        assert z == pytest.approx(2.0, abs=1e-8)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            solve_lp([1.0, 2.0], [[1.0]], [1.0])
        with pytest.raises(ValueError):
            solve_lp([1.0], [[1.0]], [1.0, 2.0])
        with pytest.raises(ValueError):
            InequalityLP(
                np.array([1.0]),
                np.array([[1.0]]),
                np.array([1.0]),
                np.array([True, False]),
            )


@st.composite
def random_inequality_lp(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 8))
    n = int(rng.integers(1, 4))
    a = rng.uniform(-2, 2, size=(m, n))
    interior = rng.uniform(-2, 2, size=n)
    b = a @ interior + rng.uniform(0.1, 2.0, size=m)  # strictly feasible
    c = rng.uniform(-1, 1, size=n)
    nonneg = rng.random(n) < 0.3
    if np.any(nonneg):
        # Keep the certified interior point feasible for the sign constraint.
        interior = np.where(nonneg, np.abs(interior), interior)
        b = a @ interior + rng.uniform(0.1, 2.0, size=m)
    return c, a, b, nonneg


class TestAgainstScipy:
    @given(random_inequality_lp())
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy(self, problem):
        c, a, b, nonneg = problem
        ours = solve_lp(c, a, b, nonneg)
        bounds = [(0, None) if nn else (None, None) for nn in nonneg]
        ref = scipy_linprog(c, A_ub=a, b_ub=b, bounds=bounds, method="highs")
        if ref.status == 0:
            assert ours.ok, ours.message
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
        elif ref.status == 3:
            assert ours.status is LPStatus.UNBOUNDED

    @given(random_inequality_lp())
    @settings(max_examples=80, deadline=None)
    def test_feasibility_of_solution(self, problem):
        c, a, b, nonneg = problem
        res = solve_lp(c, a, b, nonneg)
        if res.ok:
            assert np.all(a @ res.x <= b + 1e-6)
            assert np.all(res.x[nonneg] >= -1e-9)
