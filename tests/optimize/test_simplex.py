"""Tests for the two-phase tableau simplex, cross-checked against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog as scipy_linprog

from repro.optimize import LPStatus, simplex_standard_form


class TestStandardForm:
    def test_basic_optimum(self):
        # min -x1 - 2 x2 s.t. x1 + x2 + s = 4 (i.e. x1 + x2 <= 4)
        c = np.array([-1.0, -2.0, 0.0])
        a = np.array([[1.0, 1.0, 1.0]])
        b = np.array([4.0])
        res = simplex_standard_form(c, a, b)
        assert res.ok
        assert res.objective == pytest.approx(-8.0)
        assert res.x[1] == pytest.approx(4.0)

    def test_equality_system(self):
        # min x1 + x2 s.t. x1 + x2 = 3, x1 - x2 = 1 -> x = (2, 1)
        c = np.array([1.0, 1.0])
        a = np.array([[1.0, 1.0], [1.0, -1.0]])
        b = np.array([3.0, 1.0])
        res = simplex_standard_form(c, a, b)
        assert res.ok
        np.testing.assert_allclose(res.x, [2.0, 1.0], atol=1e-8)

    def test_infeasible(self):
        # x1 = 1 and x1 = 2 simultaneously.
        c = np.zeros(1)
        a = np.array([[1.0], [1.0]])
        b = np.array([1.0, 2.0])
        res = simplex_standard_form(c, a, b)
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        # min -x1 with only x1 - x2 = 0: x1 = x2 -> -inf.
        c = np.array([-1.0, 0.0])
        a = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        res = simplex_standard_form(c, a, b)
        assert res.status is LPStatus.UNBOUNDED

    def test_negative_rhs_normalization(self):
        # -x1 = -3 (i.e. x1 = 3).
        c = np.array([1.0])
        a = np.array([[-1.0]])
        b = np.array([-3.0])
        res = simplex_standard_form(c, a, b)
        assert res.ok
        assert res.x[0] == pytest.approx(3.0)

    def test_redundant_constraints(self):
        # Duplicated row should not break phase 1 cleanup.
        c = np.array([1.0, 1.0])
        a = np.array([[1.0, 1.0], [1.0, 1.0], [1.0, -1.0]])
        b = np.array([3.0, 3.0, 1.0])
        res = simplex_standard_form(c, a, b)
        assert res.ok
        np.testing.assert_allclose(res.x, [2.0, 1.0], atol=1e-8)

    def test_no_constraints(self):
        res = simplex_standard_form(np.array([1.0]), np.zeros((0, 1)), np.zeros(0))
        assert res.ok and res.objective == 0.0
        res = simplex_standard_form(np.array([-1.0]), np.zeros((0, 1)), np.zeros(0))
        assert res.status is LPStatus.UNBOUNDED

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            simplex_standard_form(np.zeros(2), np.zeros((1, 3)), np.zeros(1))

    def test_degenerate_cycling_guard(self):
        """Beale's classic cycling example must terminate (Bland's rule)."""
        c = np.array([-0.75, 150.0, -0.02, 6.0, 0.0, 0.0, 0.0])
        a = np.array(
            [
                [0.25, -60.0, -0.04, 9.0, 1.0, 0.0, 0.0],
                [0.5, -90.0, -0.02, 3.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            ]
        )
        b = np.array([0.0, 0.0, 1.0])
        res = simplex_standard_form(c, a, b)
        assert res.ok
        assert res.objective == pytest.approx(-0.05)


@st.composite
def random_lp(draw):
    """Random bounded standard-form LPs with a known feasible point."""
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=m, max_value=6))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10**6)))
    a = rng.uniform(-2, 2, size=(m, n))
    x_feas = rng.uniform(0, 3, size=n)
    b = a @ x_feas
    c = rng.uniform(-1, 1, size=n)
    return c, a, b


class TestAgainstScipy:
    @given(random_lp())
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy_linprog(self, problem):
        c, a, b = problem
        ours = simplex_standard_form(c, a, b)
        ref = scipy_linprog(c, A_eq=a, b_eq=b, bounds=(0, None), method="highs")
        if ref.status == 0:
            assert ours.ok, f"scipy optimal but ours {ours.status}: {ours.message}"
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
        elif ref.status == 2:
            assert ours.status is LPStatus.INFEASIBLE
        elif ref.status == 3:
            assert ours.status is LPStatus.UNBOUNDED

    @given(random_lp())
    @settings(max_examples=80, deadline=None)
    def test_solution_is_feasible(self, problem):
        c, a, b = problem
        res = simplex_standard_form(c, a, b)
        if res.ok:
            np.testing.assert_allclose(a @ res.x, b, atol=1e-6)
            assert np.all(res.x >= -1e-9)


class TestCrashBasis:
    """The Phase-I start reads unit columns off the matrix when it can."""

    def test_slack_identity_skips_phase1(self):
        from repro.optimize.simplex import _phase1_tableau

        # [A | I] with b >= 0: every row is covered by its slack column,
        # so no artificial columns are allocated at all.
        a = np.hstack([np.array([[1.0, 2.0], [3.0, 4.0]]), np.eye(2)])
        b = np.array([5.0, 6.0])
        tableau, basis = _phase1_tableau(a, b)
        assert tableau.shape == (3, a.shape[1] + 1)  # no artificial block
        assert basis == [2, 3]
        # Phase-I objective row is identically zero: no pivots needed.
        assert not (tableau[2, :] < -1e-9).any()

    def test_negated_row_uses_minus_identity_column(self):
        from repro.optimize.simplex import _phase1_tableau

        # The relaxation LP shape: [A | -I].  A negative RHS flips its
        # row, turning that row's -1 into a usable +1 unit column.
        a = np.hstack([np.array([[1.0, 2.0], [3.0, 4.0]]), -np.eye(2)])
        b = np.array([5.0, -6.0])
        tableau, basis = _phase1_tableau(a, b)
        assert basis[1] == 3  # row 1 crashed onto its flipped -t column
        assert basis[0] == a.shape[1]  # row 0 still needs an artificial
        assert tableau.shape[1] == a.shape[1] + 1 + 1

    def test_uncovered_rows_get_artificials(self):
        from repro.optimize.simplex import _phase1_tableau

        a = np.array([[1.0, 1.0], [1.0, -1.0]])  # no unit columns
        b = np.array([3.0, 1.0])
        tableau, basis = _phase1_tableau(a, b)
        assert tableau.shape == (3, 2 + 2 + 1)
        assert basis == [2, 3]

    def test_lowest_index_candidate_wins(self):
        from repro.optimize.simplex import _crash_basis

        # Columns 0 and 2 are both unit columns for row 0.
        a = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        cols = _crash_basis(a)
        assert list(cols) == [0, 1]

    def test_non_unit_coefficient_rejected(self):
        from repro.optimize.simplex import _crash_basis

        a = np.array([[2.0, 0.0], [0.0, 1.0]])
        cols = _crash_basis(a)
        assert list(cols) == [-1, 1]

    def test_crash_start_solves_relaxation_shape(self):
        # End to end on the actual hot-path structure: z free, t >= 0,
        # minimize w.t with mixed-sign RHS.
        rng = np.random.default_rng(3)
        m = 12
        a = rng.normal(size=(m, 2))
        b = rng.normal(size=m)
        from repro.optimize import solve_lp

        c = np.concatenate([[0.0, 0.0], rng.uniform(0.1, 1.0, size=m)])
        a_lp = np.hstack([a, -np.eye(m)])
        nonneg = np.array([False, False] + [True] * m)
        res = solve_lp(c, a_lp, b, nonneg)
        assert res.ok
        t = np.maximum(res.x[2:], 0.0)
        slack = a @ res.x[:2] - t - b
        assert (slack <= 1e-7).all()
