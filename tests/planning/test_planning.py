"""Tests for partition quality, site selection, and tour planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment import get_scenario
from repro.geometry import Point, Polygon
from repro.planning import (
    candidate_sites,
    partition_quality,
    plan_tour,
    select_sites,
    Tour,
)


SQUARE = Polygon.rectangle(0, 0, 10, 10)


class TestPartitionQuality:
    def test_validation(self):
        with pytest.raises(ValueError):
            partition_quality([Point(1, 1)], SQUARE)
        with pytest.raises(ValueError):
            partition_quality([Point(1, 1), Point(2, 2)], SQUARE, grid_spacing_m=0)

    def test_two_anchors_two_cells(self):
        q = partition_quality([Point(0, 5), Point(10, 5)], SQUARE, 0.5)
        assert q.num_cells == 2
        assert q.mean_error_m > 0
        assert q.worst_cell_error_m >= q.mean_error_m

    def test_more_anchors_better_quality(self):
        corners = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        extra = corners + [Point(5, 5), Point(5, 0), Point(0, 5)]
        q_few = partition_quality(corners, SQUARE, 0.5)
        q_many = partition_quality(extra, SQUARE, 0.5)
        assert q_many.num_cells > q_few.num_cells
        assert q_many.mean_error_m < q_few.mean_error_m

    def test_variance_is_slv_analogue(self):
        corners = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        q = partition_quality(corners, SQUARE, 0.5)
        assert q.error_variance >= 0


class TestCandidateSites:
    def test_avoid_obstacles(self):
        lab = get_scenario("lab")
        for site in candidate_sites(lab, spacing_m=1.0):
            assert lab.plan.contains(site)
            for o in lab.plan.obstacles:
                assert not o.polygon.contains(site, boundary=False)

    def test_spacing_validation(self):
        with pytest.raises(ValueError):
            candidate_sites(get_scenario("lab"), spacing_m=0)


class TestSelectSites:
    def test_improves_over_baseline(self):
        lobby = get_scenario("lobby")
        plan = select_sites(lobby, 3, grid_spacing_m=2.0)
        assert len(plan.sites) == 3
        assert plan.quality.mean_error_m < plan.baseline_quality.mean_error_m
        assert plan.improvement() > 0.3  # mobility buys a lot in the lobby

    def test_greedy_order_is_marginal_value(self):
        """The first chosen site alone improves the partition."""
        lobby = get_scenario("lobby")
        plan = select_sites(lobby, 2, grid_spacing_m=2.0)
        statics = [ap.position for ap in lobby.static_aps]
        first_only = partition_quality(
            statics + [plan.sites[0]], lobby.plan.boundary, 2.0
        )
        assert first_only.mean_error_m < plan.baseline_quality.mean_error_m

    def test_validation(self):
        lobby = get_scenario("lobby")
        with pytest.raises(ValueError):
            select_sites(lobby, 0)
        with pytest.raises(ValueError):
            select_sites(lobby, 5, candidates=[Point(1, 1)])

    def test_sites_come_from_pool(self):
        lobby = get_scenario("lobby")
        pool = [Point(5, 5), Point(20, 5), Point(5, 15)]
        plan = select_sites(lobby, 2, candidates=pool, grid_spacing_m=2.0)
        assert all(s in pool for s in plan.sites)


class TestTour:
    def test_permutation_validation(self):
        with pytest.raises(ValueError):
            Tour((0, 0), (Point(0, 0), Point(1, 1)), closed=True)

    def test_single_site(self):
        t = plan_tour([Point(3, 3)])
        assert t.order == (0,)
        assert t.length_m() == 0.0

    def test_start_fixed(self):
        sites = [Point(0, 0), Point(5, 0), Point(5, 5), Point(0, 5)]
        t = plan_tour(sites, start=2)
        assert t.order[0] == 2

    def test_start_validation(self):
        with pytest.raises(IndexError):
            plan_tour([Point(0, 0)], start=3)

    def test_square_optimal_tour(self):
        """On a unit square the optimal closed tour is the perimeter."""
        sites = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        t = plan_tour(sites)
        assert t.length_m() == pytest.approx(4.0)

    def test_open_tour_shorter_or_equal(self):
        sites = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4), Point(2, 2)]
        closed = plan_tour(sites, closed=True)
        open_ = plan_tour(sites, closed=False)
        assert open_.length_m() <= closed.length_m()

    def test_ordered_sites(self):
        sites = [Point(0, 0), Point(1, 0)]
        t = plan_tour(sites)
        assert t.ordered_sites()[0] == Point(0, 0)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_two_opt_never_worse_than_greedy(self, seed):
        rng = np.random.default_rng(seed)
        sites = [Point(*rng.uniform(0, 20, 2)) for _ in range(7)]
        t = plan_tour(sites)
        # Compare against the raw nearest-neighbour length.
        unvisited = set(range(1, 7))
        order = [0]
        while unvisited:
            last = sites[order[-1]]
            nxt = min(unvisited, key=lambda i: last.distance_to(sites[i]))
            order.append(nxt)
            unvisited.remove(nxt)
        nn_len = Tour(tuple(order), tuple(sites), closed=True).length_m()
        assert t.length_m() <= nn_len + 1e-9
