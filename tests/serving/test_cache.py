"""Tests for the topology-keyed constraint caches."""

import pytest

from repro.core import Anchor, LocalizerConfig, pairwise_constraints
from repro.geometry import Point, Polygon
from repro.serving import BisectorCache, LocalizerCache, topology_key


def square_anchors(pdps=(4.0, 3.0, 2.0, 1.0)):
    corners = [Point(0, 0), Point(10, 0), Point(10, 8), Point(0, 8)]
    return [
        Anchor(f"A{i}", c, pdp) for i, (c, pdp) in enumerate(zip(corners, pdps))
    ]


class TestTopologyKey:
    def test_same_topology_same_key(self):
        a = Polygon.rectangle(0, 0, 10, 8)
        b = Polygon.rectangle(0, 0, 10, 8)
        cfg = LocalizerConfig()
        assert topology_key(a, cfg) == topology_key(b, cfg)

    def test_differs_by_area_and_config(self):
        a = Polygon.rectangle(0, 0, 10, 8)
        b = Polygon.rectangle(0, 0, 11, 8)
        cfg = LocalizerConfig()
        assert topology_key(a, cfg) != topology_key(b, cfg)
        assert topology_key(a, cfg) != topology_key(
            a, LocalizerConfig(boundary_weight=50.0)
        )


class TestLocalizerCache:
    def test_hit_returns_same_instance(self):
        cache = LocalizerCache()
        area = Polygon.rectangle(0, 0, 10, 8)
        first, hit1 = cache.get(area)
        second, hit2 = cache.get(Polygon.rectangle(0, 0, 10, 8))
        assert not hit1 and hit2
        assert first is second

    def test_warmed_on_miss(self):
        cache = LocalizerCache()
        localizer, _ = cache.get(Polygon.rectangle(0, 0, 10, 8))
        assert all(rows is not None for rows in localizer._boundary_rows)

    def test_lru_eviction(self):
        cache = LocalizerCache(max_entries=2)
        a = Polygon.rectangle(0, 0, 1, 1)
        b = Polygon.rectangle(0, 0, 2, 2)
        c = Polygon.rectangle(0, 0, 3, 3)
        first_a, _ = cache.get(a)
        cache.get(b)
        cache.get(a)  # refresh a's recency
        cache.get(c)  # evicts b
        again_a, hit = cache.get(a)
        assert hit and again_a is first_a
        _, hit_b = cache.get(b)
        assert not hit_b  # was evicted
        assert cache.stats().evictions >= 1

    def test_stats(self):
        cache = LocalizerCache()
        area = Polygon.rectangle(0, 0, 10, 8)
        cache.get(area)
        cache.get(area)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_min_entries_validated(self):
        with pytest.raises(ValueError):
            LocalizerCache(0)


class TestBisectorCache:
    def test_cached_rows_identical_to_uncached(self):
        anchors = square_anchors()
        cache = BisectorCache()
        plain = pairwise_constraints(anchors)
        cached_cold = pairwise_constraints(anchors, bisector_cache=cache)
        cached_warm = pairwise_constraints(anchors, bisector_cache=cache)
        assert plain == cached_cold == cached_warm

    def test_repeat_queries_hit(self):
        anchors = square_anchors()
        cache = BisectorCache()
        pairwise_constraints(anchors, bisector_cache=cache)
        pairwise_constraints(anchors, bisector_cache=cache)
        stats = cache.stats()
        assert stats.hits == stats.misses  # second pass all hits
        assert stats.hits > 0

    def test_orientation_flip_is_a_distinct_entry(self):
        cache = BisectorCache()
        pairwise_constraints(square_anchors((4.0, 3.0)), bisector_cache=cache)
        # Same pair, reversed proximity judgement -> different (near, far).
        pairwise_constraints(square_anchors((3.0, 4.0)), bisector_cache=cache)
        assert cache.stats().misses == 2
