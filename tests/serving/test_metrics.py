"""Tests for the service metrics core."""

import numpy as np
import pytest

from repro.serving import LatencyReservoir, ServiceMetrics, percentile


class TestPercentile:
    @pytest.mark.parametrize("q", [0, 25, 50, 75, 90, 95, 100])
    def test_matches_numpy(self, q):
        rng = np.random.default_rng(3)
        values = list(rng.uniform(0, 10, 37))
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q))
        )

    def test_single_value(self):
        assert percentile([4.2], 95) == 4.2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rank_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyReservoir:
    def test_window_is_bounded_but_count_is_not(self):
        r = LatencyReservoir(capacity=4)
        for i in range(10):
            r.observe(float(i))
        assert len(r) == 4
        assert r.count == 10

    def test_mean_over_all_observations(self):
        r = LatencyReservoir(capacity=2)
        for v in (1.0, 2.0, 3.0, 6.0):
            r.observe(v)
        assert r.mean() == pytest.approx(3.0)

    def test_quantiles_empty_are_zero(self):
        assert LatencyReservoir().quantiles() == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LatencyReservoir(0)


class TestServiceMetrics:
    def test_counters_and_snapshot(self):
        m = ServiceMetrics()
        m.record_admitted()
        m.record_admitted()
        m.record_rejected()
        m.record_cache(hit=True)
        m.record_cache(hit=False)
        m.record_completed(0.010)
        m.record_completed(0.030, degraded=True, timed_out=True)
        snap = m.snapshot(queue_depth=5)
        assert snap["admitted"] == 2
        assert snap["rejected"] == 1
        assert snap["completed"] == 2
        assert snap["degraded"] == 1
        assert snap["timeouts"] == 1
        assert snap["lp_failures"] == 0
        assert snap["queue_depth"] == 5
        assert snap["cache_hit_rate"] == pytest.approx(0.5)
        assert snap["latency_mean_s"] == pytest.approx(0.020)
        assert snap["latency_p50_s"] == pytest.approx(0.020)
        assert snap["throughput_qps"] > 0

    def test_snapshot_is_plain_dict(self):
        snap = ServiceMetrics().snapshot()
        assert isinstance(snap, dict)
        assert all(isinstance(v, (int, float)) for v in snap.values())


class TestQueueWait:
    def test_queue_wait_split_in_snapshot(self):
        m = ServiceMetrics()
        m.record_queue_wait(0.010)
        m.record_queue_wait(0.030)
        snap = m.snapshot()
        assert snap["queue_wait_mean_s"] == pytest.approx(0.020)
        assert snap["queue_wait_p50_s"] == pytest.approx(0.020)
        assert snap["queue_wait_p95_s"] == pytest.approx(0.029)

    def test_queue_wait_defaults_to_zero(self):
        snap = ServiceMetrics().snapshot()
        assert snap["queue_wait_mean_s"] == 0.0
        assert snap["queue_wait_p50_s"] == 0.0
        assert snap["queue_wait_p95_s"] == 0.0
