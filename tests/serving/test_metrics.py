"""Tests for the service metrics core."""

import enum
import json
import math

import numpy as np
import pytest

from repro.serving import LatencyReservoir, ServiceMetrics, json_safe, percentile


class TestPercentile:
    @pytest.mark.parametrize("q", [0, 25, 50, 75, 90, 95, 100])
    def test_matches_numpy(self, q):
        rng = np.random.default_rng(3)
        values = list(rng.uniform(0, 10, 37))
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q))
        )

    def test_single_value(self):
        assert percentile([4.2], 95) == 4.2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rank_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyReservoir:
    def test_window_is_bounded_but_count_is_not(self):
        r = LatencyReservoir(capacity=4)
        for i in range(10):
            r.observe(float(i))
        assert len(r) == 4
        assert r.count == 10

    def test_mean_over_all_observations(self):
        r = LatencyReservoir(capacity=2)
        for v in (1.0, 2.0, 3.0, 6.0):
            r.observe(v)
        assert r.mean() == pytest.approx(3.0)

    def test_quantiles_empty_are_zero(self):
        assert LatencyReservoir().quantiles() == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LatencyReservoir(0)


class TestServiceMetrics:
    def test_counters_and_snapshot(self):
        m = ServiceMetrics()
        m.record_admitted()
        m.record_admitted()
        m.record_rejected()
        m.record_cache(hit=True)
        m.record_cache(hit=False)
        m.record_completed(0.010)
        m.record_completed(0.030, degraded=True, timed_out=True)
        snap = m.snapshot(queue_depth=5)
        assert snap["admitted"] == 2
        assert snap["rejected"] == 1
        assert snap["completed"] == 2
        assert snap["degraded"] == 1
        assert snap["timeouts"] == 1
        assert snap["lp_failures"] == 0
        assert snap["queue_depth"] == 5
        assert snap["cache_hit_rate"] == pytest.approx(0.5)
        assert snap["latency_mean_s"] == pytest.approx(0.020)
        assert snap["latency_p50_s"] == pytest.approx(0.020)
        assert snap["throughput_qps"] > 0

    def test_snapshot_is_plain_dict(self):
        snap = ServiceMetrics().snapshot()
        assert isinstance(snap, dict)
        assert all(isinstance(v, (int, float)) for v in snap.values())


class TestQueueWait:
    def test_queue_wait_split_in_snapshot(self):
        m = ServiceMetrics()
        m.record_queue_wait(0.010)
        m.record_queue_wait(0.030)
        snap = m.snapshot()
        assert snap["queue_wait_mean_s"] == pytest.approx(0.020)
        assert snap["queue_wait_p50_s"] == pytest.approx(0.020)
        assert snap["queue_wait_p95_s"] == pytest.approx(0.029)

    def test_queue_wait_defaults_to_zero(self):
        snap = ServiceMetrics().snapshot()
        assert snap["queue_wait_mean_s"] == 0.0
        assert snap["queue_wait_p50_s"] == 0.0
        assert snap["queue_wait_p95_s"] == 0.0


class TestJsonSafe:
    def test_sorted_stringified_keys_recursively(self):
        out = json_safe({"b": 1, 2: {"z": (1, 2), "a": {3.5}}})
        assert list(out) == ["2", "b"]
        assert out["2"] == {"a": [3.5], "z": [1, 2]}
        json.dumps(out)

    def test_non_finite_floats_become_null(self):
        assert json_safe({"a": math.nan, "b": math.inf, "c": 1.5}) == {
            "a": None,
            "b": None,
            "c": 1.5,
        }

    def test_enums_collapse_and_unknowns_stringify(self):
        class Status(enum.Enum):
            OK = "ok"

        class Opaque:
            def __str__(self):
                return "opaque!"

        out = json_safe({"s": Status.OK, "o": Opaque(), "flag": True})
        assert out == {"flag": True, "o": "opaque!", "s": "ok"}
        json.dumps(out)

    def test_numpy_scalars_never_break_serialization(self):
        out = json_safe({"count": np.int64(3), "rate": np.float64(0.5)})
        json.dumps(out)  # falls back to str for non-builtin numerics


class TestServiceMetricsToJson:
    def test_to_json_dumps_cleanly_with_stable_order(self):
        m = ServiceMetrics()
        m.record_admitted()
        m.record_completed(0.01)
        doc = m.to_json(queue_depth=2, queue_rejected=1)
        assert doc == json.loads(json.dumps(doc, sort_keys=True))
        assert list(doc) == sorted(doc)
        assert doc["completed"] == 1
        assert doc["queue_depth"] == 2
        assert doc["queue_rejected_total"] == 1

    def test_to_json_matches_snapshot_values(self):
        m = ServiceMetrics()
        m.record_admitted()
        m.record_completed(0.25)
        snap = m.snapshot()
        doc = m.to_json()
        assert doc["latency_p50_s"] == snap["latency_p50_s"]  # exact floats
        assert doc["completed"] == snap["completed"]
