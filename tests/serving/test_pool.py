"""Tests for the worker pool and its sequential fallback."""

import threading
import warnings

import pytest

from repro.serving import WorkerPool


class TestSequentialFallback:
    def test_not_concurrent(self):
        with WorkerPool(0) as pool:
            assert not pool.concurrent

    def test_runs_inline_on_caller_thread(self):
        with WorkerPool(0) as pool:
            tid = pool.submit(threading.get_ident).result()
        assert tid == threading.get_ident()

    def test_exception_carried_by_future(self):
        def boom():
            raise ValueError("boom")

        with WorkerPool(0) as pool:
            future = pool.submit(boom)
        with pytest.raises(ValueError, match="boom"):
            future.result()


class TestConcurrentPool:
    def test_runs_on_worker_threads(self):
        with WorkerPool(2) as pool:
            assert pool.concurrent
            tid = pool.submit(threading.get_ident).result()
        assert tid != threading.get_ident()

    def test_map_ordered_preserves_order(self):
        barrier = threading.Barrier(4, timeout=5)

        def tagged(i):
            barrier.wait()  # force genuine concurrency
            return i * i

        with WorkerPool(4) as pool:
            assert pool.map_ordered(tagged, range(4)) == [0, 1, 4, 9]

    def test_map_ordered_matches_sequential(self):
        items = list(range(17))
        with WorkerPool(0) as seq, WorkerPool(3) as conc:
            assert seq.map_ordered(hex, items) == conc.map_ordered(hex, items)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(-1)

    def test_none_picks_cpu_count_with_warning(self):
        # max_workers=None silently resolving to os.cpu_count() threads
        # is a GIL-bound footgun, so it now carries a RuntimeWarning
        # steering callers to process workers / lp_batch instead.
        with pytest.warns(RuntimeWarning, match="cpu_count"):
            with WorkerPool(None) as pool:
                assert pool.max_workers >= 1

    def test_explicit_worker_count_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with WorkerPool(2) as pool:
                assert pool.max_workers == 2
