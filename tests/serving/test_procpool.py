"""Tests for the process-based serving workers.

The process pool's contract mirrors the thread pool's: real parallelism
is an implementation detail, the served bits are not.  Every test here
compares process-worker output against the sequential reference service
with ``==`` on positions and LP diagnostics, never ``approx``.

Worker processes are expensive on a small CI box, so the pools stay at
1-2 workers and the query counts small.
"""

import numpy as np
import pytest

import repro.serving.procpool as procpool_module
from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.serving import (
    LocalizationRequest,
    LocalizationService,
    ServingConfig,
)
from repro.serving.procpool import ProcessWorkerPool


@pytest.fixture(scope="module")
def lab():
    return get_scenario("lab")


@pytest.fixture(scope="module")
def lab_system(lab):
    return NomLocSystem(lab, SystemConfig(packets_per_link=4))


@pytest.fixture(scope="module")
def requests(lab, lab_system):
    """Four seeded queries across the lab's test sites."""
    out = []
    for i in range(4):
        site = lab.test_sites[i % len(lab.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([42, i]))
        out.append(
            LocalizationRequest(
                tuple(lab_system.gather_anchors(site, rng)), query_id=f"q{i}"
            )
        )
    return out


@pytest.fixture(scope="module")
def reference(lab, requests):
    """The bit-exactness baseline: one sequential service."""
    with LocalizationService(lab.plan.boundary) as service:
        return service.batch(requests)


def assert_same_answer(seq, proc):
    assert proc.query_id == seq.query_id
    assert proc.position == seq.position
    assert proc.estimate.relaxation_cost == seq.estimate.relaxation_cost
    assert proc.estimate.num_constraints == seq.estimate.num_constraints
    assert not proc.degraded


class TestPoolLifecycle:
    def test_submit_request_matches_sequential(self, lab, requests, reference):
        with ProcessWorkerPool(
            lab.plan.boundary, None, ServingConfig(), max_workers=1
        ) as pool:
            assert pool.concurrent
            for req, seq in zip(requests, reference):
                assert_same_answer(seq, pool.submit_request(req).result())

    def test_submit_chunk_runs_stacked_path(self, lab, requests, reference):
        with ProcessWorkerPool(
            lab.plan.boundary, None, ServingConfig(), max_workers=1
        ) as pool:
            responses = pool.submit_chunk(requests).result()
        assert len(responses) == len(requests)
        for seq, proc in zip(reference, responses):
            assert_same_answer(seq, proc)

    def test_fork_parent_prewarms_template(self, lab):
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fork start method only")
        with ProcessWorkerPool(
            lab.plan.boundary, None, ServingConfig(), max_workers=1
        ):
            # The parent builds + warms the template before the executor
            # forks so workers inherit the caches copy-on-write.
            template = procpool_module._WORKER_SERVICE
            assert template is not None
            assert template.config.max_workers == 0  # never nests pools
            assert template.config.worker_mode == "thread"

    def test_worker_count_validated(self, lab):
        with pytest.raises(ValueError):
            ProcessWorkerPool(
                lab.plan.boundary, None, ServingConfig(), max_workers=-2
            )

    def test_shutdown_idempotent(self, lab):
        pool = ProcessWorkerPool(
            lab.plan.boundary, None, ServingConfig(), max_workers=1
        )
        pool.shutdown()
        pool.shutdown()


class TestProcessModeService:
    def test_batch_bit_identical_to_sequential(self, lab, requests, reference):
        config = ServingConfig(max_workers=2, worker_mode="process")
        with LocalizationService(lab.plan.boundary, config=config) as svc:
            served = svc.batch(requests)
            snapshot = svc.metrics_snapshot()
        for seq, proc in zip(reference, served):
            assert_same_answer(seq, proc)
        # Workers record metrics into their own discarded service; the
        # parent must re-record every completion on the visible side.
        assert snapshot["completed"] == len(requests)
        assert snapshot["queue_depth"] == 0

    def test_chunked_batch_bit_identical(self, lab, requests, reference):
        config = ServingConfig(
            max_workers=1, worker_mode="process", lp_batch=3
        )
        with LocalizationService(lab.plan.boundary, config=config) as svc:
            served = svc.batch(requests)
            snapshot = svc.metrics_snapshot()
        for seq, proc in zip(reference, served):
            assert_same_answer(seq, proc)
        assert snapshot["completed"] == len(requests)

    def test_serve_stream_preserves_order(self, lab, requests, reference):
        config = ServingConfig(max_workers=2, worker_mode="process")
        with LocalizationService(lab.plan.boundary, config=config) as svc:
            streamed = list(svc.serve(requests))
        for seq, proc in zip(reference, streamed):
            assert_same_answer(seq, proc)

    def test_process_mode_requires_workers(self):
        with pytest.raises(ValueError, match="process worker_mode"):
            ServingConfig(max_workers=0, worker_mode="process")

    def test_unknown_worker_mode_rejected(self):
        with pytest.raises(ValueError, match="worker_mode"):
            ServingConfig(worker_mode="fiber")
