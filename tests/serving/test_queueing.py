"""Tests for the bounded admission queue."""

import threading

import pytest

from repro.serving import AdmissionQueue, QueueFullError


class TestAdmissionQueue:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_try_acquire_fills_then_rejects(self):
        q = AdmissionQueue(2)
        q.try_acquire()
        q.try_acquire()
        assert q.depth == 2
        with pytest.raises(QueueFullError):
            q.try_acquire()

    def test_release_frees_a_slot(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        q.release()
        q.try_acquire()  # does not raise
        assert q.depth == 1

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionQueue(1).release()

    def test_blocking_acquire_times_out(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        with pytest.raises(QueueFullError):
            q.acquire(timeout=0.01)

    def test_blocking_acquire_wakes_on_release(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        acquired = threading.Event()

        def waiter():
            q.acquire(timeout=5)
            acquired.set()

        t = threading.Thread(target=waiter)
        t.start()
        q.release()
        t.join(timeout=5)
        assert acquired.is_set()
        assert q.depth == 1


class TestShedAccounting:
    def test_rejected_total_counts_try_acquire_bounces(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        for _ in range(3):
            with pytest.raises(QueueFullError):
                q.try_acquire()
        assert q.rejected_total == 3
        # Shedding is cumulative; freeing a slot does not forgive it.
        q.release()
        assert q.rejected_total == 3

    def test_rejected_total_counts_acquire_timeouts(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        with pytest.raises(QueueFullError):
            q.acquire(timeout=0.01)
        assert q.rejected_total == 1


class TestWaitIdle:
    def test_returns_immediately_when_empty(self):
        assert AdmissionQueue(4).wait_idle(timeout=0.01)

    def test_times_out_while_slots_held(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        assert not q.wait_idle(timeout=0.01)

    def test_wakes_when_last_slot_returns(self):
        q = AdmissionQueue(2)
        q.try_acquire()
        q.try_acquire()
        idle = threading.Event()

        def waiter():
            if q.wait_idle(timeout=5):
                idle.set()

        t = threading.Thread(target=waiter)
        t.start()
        q.release()
        assert not idle.wait(timeout=0.05)  # one slot still held
        q.release()
        t.join(timeout=5)
        assert idle.is_set()
