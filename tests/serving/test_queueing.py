"""Tests for the bounded admission queue."""

import threading

import pytest

from repro.serving import AdmissionQueue, QueueFullError


class TestAdmissionQueue:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_try_acquire_fills_then_rejects(self):
        q = AdmissionQueue(2)
        q.try_acquire()
        q.try_acquire()
        assert q.depth == 2
        with pytest.raises(QueueFullError):
            q.try_acquire()

    def test_release_frees_a_slot(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        q.release()
        q.try_acquire()  # does not raise
        assert q.depth == 1

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionQueue(1).release()

    def test_blocking_acquire_times_out(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        with pytest.raises(QueueFullError):
            q.acquire(timeout=0.01)

    def test_blocking_acquire_wakes_on_release(self):
        q = AdmissionQueue(1)
        q.try_acquire()
        acquired = threading.Event()

        def waiter():
            q.acquire(timeout=5)
            acquired.set()

        t = threading.Thread(target=waiter)
        t.start()
        q.release()
        t.join(timeout=5)
        assert acquired.is_set()
        assert q.depth == 1
