"""Tests for the LocalizationService façade.

Covers the serving subsystem's contract: cached-vs-uncached and
concurrent-vs-sequential answers are bit-identical to the direct
localizer, backpressure rejects at capacity, and LP failures/timeouts
degrade gracefully to the flagged weighted-centroid fallback.
"""

import threading

import numpy as np
import pytest

import repro.core.localizer as localizer_module
from repro.core import NomLocLocalizer, NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import run_campaign, run_campaign_via_service
from repro.geometry import Polygon
from repro.serving import (
    LocalizationRequest,
    LocalizationService,
    QueueFullError,
    ServiceClosedError,
    ServingConfig,
)


@pytest.fixture(scope="module")
def lab():
    return get_scenario("lab")


@pytest.fixture(scope="module")
def lab_system(lab):
    return NomLocSystem(lab, SystemConfig(packets_per_link=4))


@pytest.fixture(scope="module")
def anchor_sets(lab, lab_system):
    """Six seeded queries across the lab's test sites."""
    sets = []
    for i in range(6):
        site = lab.test_sites[i % len(lab.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([42, i]))
        sets.append((site, tuple(lab_system.gather_anchors(site, rng))))
    return sets


class TestBitExactness:
    def test_cached_equals_uncached_for_same_seed(self, lab, anchor_sets):
        cached = LocalizationService(lab.plan.boundary)
        uncached = LocalizationService(
            lab.plan.boundary,
            config=ServingConfig(
                cache_topologies=False, cache_bisectors=False
            ),
        )
        with cached, uncached:
            # Two passes so the second one is served fully from cache.
            anchors = [a for _, a in anchor_sets]
            cached.batch(anchors)
            warm = cached.batch(anchors)
            cold = uncached.batch(anchors)
        assert cached.metrics_snapshot()["topology_cache"]["hits"] > 0
        for w, c in zip(warm, cold):
            assert w.position == c.position
            assert w.estimate.relaxation_cost == c.estimate.relaxation_cost
            assert w.estimate.num_constraints == c.estimate.num_constraints

    def test_concurrent_batch_equals_sequential_batch(self, lab, anchor_sets):
        anchors = [a for _, a in anchor_sets]
        with LocalizationService(lab.plan.boundary) as seq_svc:
            sequential = seq_svc.batch(anchors)
        with LocalizationService(
            lab.plan.boundary, config=ServingConfig(max_workers=4)
        ) as conc_svc:
            concurrent = conc_svc.batch(anchors)
        for s, c in zip(sequential, concurrent):
            assert s.position == c.position
            assert s.estimate.relaxation_cost == c.estimate.relaxation_cost

    def test_service_matches_direct_localizer(self, lab, anchor_sets):
        localizer = NomLocLocalizer(lab.plan.boundary)
        with LocalizationService(lab.plan.boundary) as service:
            for _, anchors in anchor_sets:
                resp = service.locate(anchors)
                direct = localizer.locate(anchors)
                assert resp.position == direct.position
                assert resp.estimate.relaxation_cost == direct.relaxation_cost
                assert not resp.degraded

    def test_parallel_pieces_identical(self, lab, anchor_sets):
        config = ServingConfig(max_workers=2, parallel_pieces=True)
        localizer = NomLocLocalizer(lab.plan.boundary)
        with LocalizationService(lab.plan.boundary, config=config) as service:
            for _, anchors in anchor_sets[:3]:
                assert (
                    service.locate(anchors).position
                    == localizer.locate(anchors).position
                )


class TestBackpressure:
    def test_submit_rejects_when_queue_full(self, lab, anchor_sets):
        _, anchors = anchor_sets[0]
        config = ServingConfig(max_workers=1, queue_capacity=1)
        gate = threading.Event()
        with LocalizationService(lab.plan.boundary, config=config) as service:
            inner_solve = service._solve

            def blocking_solve(*args, **kwargs):
                assert gate.wait(timeout=10)
                return inner_solve(*args, **kwargs)

            service._solve = blocking_solve
            first = service.submit(anchors)  # occupies the only slot
            with pytest.raises(QueueFullError):
                service.submit(anchors)
            gate.set()
            assert first.result(timeout=10).position is not None
            snap = service.metrics_snapshot()
        assert snap["rejected"] == 1
        assert snap["admitted"] == 1

    def test_batch_blocks_instead_of_rejecting(self, lab, anchor_sets):
        anchors = [a for _, a in anchor_sets]
        config = ServingConfig(max_workers=2, queue_capacity=2)
        with LocalizationService(lab.plan.boundary, config=config) as service:
            responses = service.batch(anchors)
            snap = service.metrics_snapshot()
        assert len(responses) == len(anchors)
        assert snap["rejected"] == 0
        assert snap["queue_depth"] == 0  # all slots returned


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_workers": -1},
            {"queue_capacity": 0},
            {"timeout_s": 0.0},
            {"max_cached_topologies": 0},
            {"max_cached_bisectors": 0},
            {"latency_window": 0},
        ],
    )
    def test_bad_knobs_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class TestQueueFullUnderConcurrency:
    def test_racing_submitters_shed_against_capacity_one(
        self, lab, anchor_sets
    ):
        """Satellite drill: real threads racing a saturated capacity-1
        service all bounce with QueueFullError, and the shed total is
        visible in the metrics snapshot."""
        _, anchors = anchor_sets[0]
        config = ServingConfig(max_workers=1, queue_capacity=1)
        gate = threading.Event()
        with LocalizationService(lab.plan.boundary, config=config) as service:
            inner_solve = service._solve

            def blocking_solve(*args, **kwargs):
                assert gate.wait(timeout=10)
                return inner_solve(*args, **kwargs)

            service._solve = blocking_solve
            first = service.submit(anchors)  # saturates the only slot
            outcomes = []

            def racer():
                try:
                    outcomes.append(service.submit(anchors))
                except QueueFullError:
                    outcomes.append(QueueFullError)

            threads = [threading.Thread(target=racer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            gate.set()
            assert first.result(timeout=10).position is not None
            snap = service.metrics_snapshot()
        assert outcomes == [QueueFullError] * 4
        assert snap["rejected"] == 4
        assert snap["queue_rejected_total"] == 4
        assert snap["admitted"] == 1


class TestLifecycle:
    def test_drain_stops_admissions_and_flushes_metrics(
        self, lab, anchor_sets
    ):
        _, anchors = anchor_sets[0]
        service = LocalizationService(lab.plan.boundary)
        service.locate(anchors)
        assert not service.closed
        snapshot = service.drain()
        assert service.closed
        assert snapshot["completed"] == 1
        with pytest.raises(ServiceClosedError):
            service.submit(anchors)
        with pytest.raises(ServiceClosedError):
            service.batch([anchors])
        with pytest.raises(ServiceClosedError):
            list(service.serve([anchors]))
        service.close()  # idempotent

    def test_drain_waits_for_in_flight_queries(self, lab, anchor_sets):
        _, anchors = anchor_sets[0]
        config = ServingConfig(max_workers=1)
        gate = threading.Event()
        service = LocalizationService(lab.plan.boundary, config=config)
        inner_solve = service._solve

        def blocking_solve(*args, **kwargs):
            assert gate.wait(timeout=10)
            return inner_solve(*args, **kwargs)

        service._solve = blocking_solve
        future = service.submit(anchors)
        # The in-flight query is stuck; a bounded drain times out but
        # keeps the pool alive so the query can still finish.
        with pytest.raises(TimeoutError):
            service.drain(timeout_s=0.05)
        assert service.closed
        gate.set()
        assert future.result(timeout=10).position is not None
        snapshot = service.drain()
        assert snapshot["completed"] == 1
        assert snapshot["queue_depth"] == 0


class TestGracefulDegradation:
    def test_injected_lp_failure_degrades(self, lab, anchor_sets, monkeypatch):
        truth, anchors = anchor_sets[0]

        def broken_relaxation(system):
            raise RuntimeError("injected LP failure")

        monkeypatch.setattr(
            localizer_module, "solve_relaxation", broken_relaxation
        )
        with LocalizationService(lab.plan.boundary) as service:
            resp = service.locate(anchors)
            snap = service.metrics_snapshot()
        assert resp.degraded and not resp.ok
        assert resp.reason == "lp-failure"
        assert resp.estimate is None
        # The fallback still answers inside the venue, near the truth-ish.
        assert lab.plan.boundary.contains(resp.position)
        assert snap["degraded"] == 1
        assert snap["lp_failures"] == 1

    def test_lp_failure_propagates_when_degradation_off(
        self, lab, anchor_sets, monkeypatch
    ):
        _, anchors = anchor_sets[0]

        def broken_relaxation(system):
            raise RuntimeError("injected LP failure")

        monkeypatch.setattr(
            localizer_module, "solve_relaxation", broken_relaxation
        )
        config = ServingConfig(degrade_on_failure=False)
        with LocalizationService(lab.plan.boundary, config=config) as service:
            with pytest.raises(RuntimeError, match="injected"):
                service.locate(anchors)

    def test_expired_deadline_degrades_with_timeout_reason(
        self, lab, anchor_sets
    ):
        _, anchors = anchor_sets[0]
        with LocalizationService(lab.plan.boundary) as service:
            resp = service.locate(anchors, timeout_s=1e-9)
            snap = service.metrics_snapshot()
        assert resp.degraded
        assert resp.reason == "timeout"
        assert snap["timeouts"] == 1

    def test_fallback_is_pdp_weighted_centroid(self, lab, anchor_sets):
        _, anchors = anchor_sets[0]
        with LocalizationService(lab.plan.boundary) as service:
            resp = service.locate(anchors, timeout_s=1e-9)
        total = sum(a.pdp for a in anchors)
        expected_x = sum(a.pdp * a.position.x for a in anchors) / total
        expected_y = sum(a.pdp * a.position.y for a in anchors) / total
        localizer = NomLocLocalizer(lab.plan.boundary)
        projected = localizer.project_into_area(
            type(resp.position)(expected_x, expected_y)
        )
        assert resp.position.almost_equals(projected)


class TestStreaming:
    def test_serve_preserves_order(self, lab, anchor_sets):
        anchors = [a for _, a in anchor_sets]
        config = ServingConfig(max_workers=3)
        with LocalizationService(lab.plan.boundary, config=config) as service:
            streamed = list(service.serve(iter(anchors)))
        with LocalizationService(lab.plan.boundary) as reference:
            expected = reference.batch(anchors)
        assert [r.position for r in streamed] == [
            r.position for r in expected
        ]

    def test_requests_accept_query_ids(self, lab, anchor_sets):
        _, anchors = anchor_sets[0]
        request = LocalizationRequest(anchors, query_id="q-7")
        with LocalizationService(lab.plan.boundary) as service:
            resp = service.batch([request])[0]
        assert resp.query_id == "q-7"

    def test_empty_request_rejected(self):
        with pytest.raises(ValueError):
            LocalizationRequest(())


class TestMicroBatching:
    def test_lp_batch_bit_identical_to_sequential(self, lab, anchor_sets):
        anchors = [a for _, a in anchor_sets]
        with LocalizationService(lab.plan.boundary) as reference:
            expected = reference.batch(anchors)
        for chunk_size in (2, 3, 64):
            config = ServingConfig(lp_batch=chunk_size)
            with LocalizationService(
                lab.plan.boundary, config=config
            ) as service:
                served = service.batch(anchors)
            for seq, chunked in zip(expected, served):
                assert chunked.position == seq.position
                assert (
                    chunked.estimate.relaxation_cost
                    == seq.estimate.relaxation_cost
                )
                assert (
                    chunked.estimate.num_constraints
                    == seq.estimate.num_constraints
                )

    def test_lp_batch_composes_with_thread_workers(self, lab, anchor_sets):
        anchors = [a for _, a in anchor_sets]
        with LocalizationService(lab.plan.boundary) as reference:
            expected = reference.batch(anchors)
        config = ServingConfig(max_workers=2, lp_batch=2)
        with LocalizationService(lab.plan.boundary, config=config) as service:
            served = service.batch(anchors)
            snap = service.metrics_snapshot()
        assert [r.position for r in served] == [r.position for r in expected]
        assert snap["completed"] == len(anchors)
        assert snap["queue_depth"] == 0

    def test_deadline_requests_take_scalar_path(self, lab, anchor_sets):
        # A request with its own deadline cannot ride a stacked pass
        # (deadlines are checked between piece solves); it must still be
        # answered, in order, alongside its chunked batch mates.
        _, anchors = anchor_sets[0]
        requests = [
            LocalizationRequest(a, query_id=f"q{i}")
            for i, (_, a) in enumerate(anchor_sets)
        ]
        requests[2] = LocalizationRequest(
            anchors, query_id="q2", timeout_s=30.0
        )
        config = ServingConfig(lp_batch=3)
        with LocalizationService(lab.plan.boundary, config=config) as service:
            served = service.batch(requests)
        with LocalizationService(lab.plan.boundary) as reference:
            expected = reference.batch(requests)
        assert [r.query_id for r in served] == [f"q{i}" for i in range(6)]
        assert [r.position for r in served] == [r.position for r in expected]

    def test_poisoned_group_degrades_per_request(
        self, lab, anchor_sets, monkeypatch
    ):
        # When the stacked solve blows up, the chunk falls back to scalar
        # handling so only genuinely-failing queries degrade.
        def broken_batch(*args, **kwargs):
            raise RuntimeError("stacked solve corrupted")

        monkeypatch.setattr(
            localizer_module.NomLocLocalizer, "locate_batch", broken_batch
        )
        anchors = [a for _, a in anchor_sets]
        config = ServingConfig(lp_batch=3)
        with LocalizationService(lab.plan.boundary, config=config) as service:
            served = service.batch(anchors)
        with LocalizationService(lab.plan.boundary) as reference:
            expected = reference.batch(anchors)
        assert [r.position for r in served] == [r.position for r in expected]
        assert all(not r.degraded for r in served)


class TestMultiTenant:
    def test_request_area_override(self, lab, anchor_sets):
        _, anchors = anchor_sets[0]
        other = Polygon.rectangle(0, 0, 50, 40)
        with LocalizationService(lab.plan.boundary) as service:
            service.locate(anchors)
            service.locate(anchors, area=other)
            snap = service.metrics_snapshot()
        assert snap["topology_cache"]["size"] == 2


class TestCampaignViaService:
    def test_matches_direct_campaign(self, lab, lab_system):
        sites = lab.test_sites[:3]
        direct = run_campaign(lab_system, sites, repetitions=2, seed=11)
        with LocalizationService(lab.plan.boundary) as service:
            served = run_campaign_via_service(
                service,
                lab_system.gather_anchors,
                sites,
                repetitions=2,
                seed=11,
            )
        assert served.per_site_means() == pytest.approx(
            direct.per_site_means(), abs=1e-12
        )
