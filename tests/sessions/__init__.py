"""Tests for the repro.sessions streaming tracking layer."""
