"""Determinism regression tests for the streaming tracking layer.

The subsystem's core contract: a seeded multi-object scenario produces a
byte-identical session event log — across repeat runs, across
thread/process serving workers (the serving layer's bit-exactness
carries through the whole stack), and independent of object arrival
order for the per-object particle RNGs.
"""

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import FloorPlan, get_scenario
from repro.geometry import Point, Polygon
from repro.serving import LocalizationService, ServingConfig
from repro.sessions import SessionConfig, SessionManager, ZoneMap
from repro.tracking import random_trajectory

SEED = 5
PACKETS = 4
OBJECTS = 3
TICKS = 6


def _synthetic_fixes():
    """Seeded fix stream: [(object_id, t_s, Point, confidence), ...]."""
    rng = np.random.default_rng(np.random.SeedSequence([SEED, 9]))
    rows = []
    for tick in range(12):
        for i in range(OBJECTS):
            rows.append(
                (
                    f"obj-{i}",
                    float(tick),
                    Point(*rng.uniform((0.5, 0.5), (11.5, 7.5))),
                    float(rng.uniform(0.2, 1.0)),
                )
            )
    return rows


def _replay(fixes, **config_overrides):
    zones = ZoneMap.grid(Polygon.rectangle(0, 0, 12, 8), 2, 3)
    plan = FloorPlan("room", Polygon.rectangle(0, 0, 12, 8))
    manager = SessionManager(
        zones, SessionConfig(**config_overrides), plan=plan
    )
    for object_id, t_s, fix, confidence in fixes:
        manager.observe(object_id, t_s, fix, confidence=confidence)
    return manager


class TestRepeatRuns:
    def test_kalman_event_log_byte_identical(self):
        fixes = _synthetic_fixes()
        first = _replay(fixes)
        second = _replay(fixes)
        assert first.event_log.to_jsonl() == second.event_log.to_jsonl()
        assert first.event_log.digest() == second.event_log.digest()

    def test_particle_event_log_byte_identical(self):
        fixes = _synthetic_fixes()
        first = _replay(fixes, filter_kind="particle", seed=3)
        second = _replay(fixes, filter_kind="particle", seed=3)
        assert first.event_log.digest() == second.event_log.digest()

    def test_particle_rngs_are_arrival_order_independent(self):
        # Per-object RNGs are keyed by object identity, not by arrival
        # order: interleaving objects differently must not change any
        # object's track.
        fixes = _synthetic_fixes()
        by_tick = _replay(fixes, filter_kind="particle", seed=3)
        # Same fixes, grouped per object instead of per tick.
        regrouped = sorted(fixes, key=lambda row: (row[0], row[1]))
        by_object = _replay(regrouped, filter_kind="particle", seed=3)
        for object_id in by_tick.object_ids():
            a = by_tick.session(object_id).filter.estimate()
            b = by_object.session(object_id).filter.estimate()
            assert a == b, object_id


class TestWorkerModes:
    def test_thread_and_process_serving_produce_identical_logs(self):
        scenario = get_scenario("lab")
        system = NomLocSystem(
            scenario, SystemConfig(packets_per_link=PACKETS)
        )
        trajectories = [
            random_trajectory(
                scenario.plan,
                np.random.default_rng(
                    np.random.SeedSequence([SEED, 1000 + i])
                ),
                num_waypoints=4,
            )
            for i in range(OBJECTS)
        ]

        def served_digest(worker_mode):
            zones = ZoneMap.grid(scenario.plan.boundary, 2, 3)
            manager = SessionManager(zones, SessionConfig())
            service = LocalizationService(
                scenario.plan.boundary,
                config=ServingConfig(
                    max_workers=2, worker_mode=worker_mode, lp_batch=3
                ),
            )
            try:
                for tick in range(TICKS):
                    batch = []
                    for i, traj in enumerate(trajectories):
                        truth = traj.positions[min(tick, len(traj) - 1)]
                        rng = np.random.default_rng(
                            np.random.SeedSequence([SEED, tick, i])
                        )
                        batch.append(tuple(system.gather_anchors(truth, rng)))
                    for i, resp in enumerate(service.batch(batch)):
                        manager.ingest(f"obj-{i}", float(tick), resp)
            finally:
                service.close()
            return manager.event_log.digest()

        assert served_digest("thread") == served_digest("process")
