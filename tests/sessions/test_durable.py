"""Tests for crash-consistent session persistence (repro.sessions.durable).

The contract under test: the :class:`SessionStore` journals every
applied input with a post-apply digest-chain head, snapshots cover only
flushed rows, and :func:`recover` (latest snapshot + journal-tail replay
through the normal apply path) rebuilds a manager whose continued run is
byte-identical to one that never crashed — with any divergence caught
per entry as a :class:`RecoveryError`, never silently absorbed.
"""

import json
import sqlite3
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment import FloorPlan
from repro.geometry import Point, Polygon
from repro.sessions import (
    CHAIN_SEED,
    GeofenceRule,
    RecoveryError,
    SessionConfig,
    SessionManager,
    SessionStore,
    SessionStoreError,
    ZoneMap,
    recover,
)

SEED = 5
OBJECTS = 3


def _zones() -> ZoneMap:
    return ZoneMap.grid(Polygon.rectangle(0, 0, 12, 8), 2, 3)


def _plan() -> FloorPlan:
    return FloorPlan("room", Polygon.rectangle(0, 0, 12, 8))


def _fixes(ticks: int = 12, objects: int = OBJECTS, salt: int = 9):
    """Seeded fix stream: [(object_id, t_s, Point, confidence), ...]."""
    rng = np.random.default_rng(np.random.SeedSequence([SEED, salt]))
    rows = []
    for tick in range(ticks):
        for i in range(objects):
            rows.append(
                (
                    f"obj-{i}",
                    float(tick),
                    Point(*rng.uniform((0.5, 0.5), (11.5, 7.5))),
                    float(rng.uniform(0.2, 1.0)),
                )
            )
    return rows


def _feed(manager, fixes):
    for object_id, t_s, fix, confidence in fixes:
        manager.observe(object_id, t_s, fix, confidence=confidence)


class TestSessionStore:
    def test_rows_buffer_until_group_commit(self, tmp_path):
        with SessionStore(tmp_path / "s.db", group_commit=4) as store:
            for i in range(3):
                seq = store.append_journal("fix", "a", float(i), {}, "c")
                assert seq == i + 1
            # Three buffered rows: nothing durable yet.
            assert store.journal_len() == 0
            assert store.counts()["buffered"] == 3
            store.append_journal("fix", "a", 3.0, {}, "c")
            # The fourth row completed the batch -> one fsynced txn.
            assert store.journal_len() == 4
            assert store.counts()["buffered"] == 0

    def test_flush_commits_partial_batch(self, tmp_path):
        with SessionStore(tmp_path / "s.db", group_commit=100) as store:
            store.append_journal("fix", "a", 0.0, {"x": 1.0}, "c0")
            store.flush()
            assert store.journal_len() == 1
            assert store.last_seq() == 1
            store.flush()  # empty flush is a no-op
            assert store.journal_len() == 1

    def test_sequence_continues_across_reopen(self, tmp_path):
        db = tmp_path / "s.db"
        with SessionStore(db, group_commit=1) as store:
            store.append_journal("fix", "a", 0.0, {}, "c0")
            store.append_journal("fix", "a", 1.0, {}, "c1")
        with SessionStore(db, group_commit=1) as store:
            assert store.last_seq() == 2
            assert store.append_journal("fix", "a", 2.0, {}, "c2") == 3

    def test_journal_tail_round_trips_payloads(self, tmp_path):
        with SessionStore(tmp_path / "s.db", group_commit=1) as store:
            store.append_journal(
                "fix", "obj-1", 1.5, {"x": 0.1, "y": 2.0, "confidence": 0.5}, "ch"
            )
            store.append_journal("evict", "", 9.0, {}, "ch2")
            tail = store.journal_tail()
            assert [e.seq for e in tail] == [1, 2]
            assert tail[0].kind == "fix"
            assert tail[0].object_id == "obj-1"
            assert tail[0].payload == {"x": 0.1, "y": 2.0, "confidence": 0.5}
            assert tail[0].chain == "ch"
            assert tail[1].kind == "evict"
            assert store.journal_tail(after_seq=1) == tail[1:]
            assert store.fix_count() == 1

    def test_snapshot_flushes_buffer_and_prunes_old(self, tmp_path):
        with SessionStore(
            tmp_path / "s.db", group_commit=100, keep_snapshots=2
        ) as store:
            for i in range(5):
                store.append_journal("fix", "a", float(i), {}, f"c{i}")
            store.save_snapshot(3, {"n": 3})
            # The snapshot must never cover rows that are not on disk.
            assert store.journal_len() == 5
            store.save_snapshot(4, {"n": 4})
            store.save_snapshot(5, {"n": 5})
            assert store.snapshot_count() == 2  # 3 was pruned
            seq, state = store.latest_snapshot()
            assert (seq, state) == (5, {"n": 5})

    def test_payload_encoding_matches_json(self):
        from repro.sessions.durable import _encode_payload

        cases = [
            {},
            {"x": 0.1, "y": -2.5e-17, "confidence": 1.0},
            {"x": float("inf")},  # non-finite: json.dumps fallback
            {"n": 3},
            {"weird key": 1.0},
            {"nested": {"a": 1.0}},
        ]
        for case in cases:
            assert _encode_payload(case) == json.dumps(
                case, sort_keys=True, separators=(",", ":")
            ), case

    def test_validation_and_closed_store(self, tmp_path):
        with pytest.raises(ValueError):
            SessionStore(tmp_path / "a.db", group_commit=0)
        with pytest.raises(ValueError):
            SessionStore(tmp_path / "b.db", keep_snapshots=0)
        store = SessionStore(tmp_path / "c.db")
        store.close()
        store.close()  # idempotent
        with pytest.raises(SessionStoreError):
            store.append_journal("fix", "a", 0.0, {}, "c")


class TestRecovery:
    def _run_durable(self, db, fixes, *, checkpoint_every=10, group_commit=4,
                     config=None, rules=(), plan=None, evict_at=()):
        store = SessionStore(db, group_commit=group_commit)
        manager = SessionManager(
            _zones(),
            config,
            rules,
            plan,
            store=store,
            checkpoint_every=checkpoint_every,
        )
        for row in fixes:
            object_id, t_s, fix, confidence = row
            manager.observe(object_id, t_s, fix, confidence=confidence)
            if t_s in evict_at:
                manager.evict_idle(t_s)
        manager.sync()
        return store, manager

    def test_kalman_recovery_matches_uninterrupted_run(self, tmp_path):
        db = tmp_path / "k.db"
        fixes = _fixes()
        store, durable = self._run_durable(db, fixes)
        pre_crash = durable.log.chain()
        store.close()

        reopened = SessionStore(db, group_commit=4)
        recovered, report = recover(reopened, _zones(), checkpoint_every=10)
        baseline = SessionManager(_zones())
        _feed(baseline, fixes)

        assert recovered.log.digest() == baseline.log.digest()
        assert recovered.log.chain() == pre_crash
        assert report.chain == pre_crash
        assert report.snapshot_seq > 0  # a checkpoint actually fired
        assert report.replayed == len(fixes) - report.snapshot_seq
        assert report.events == len(baseline.log)
        reopened.close()

    def test_recovered_manager_continues_bit_identically(self, tmp_path):
        """The real contract: recovery is invisible to the future."""
        db = tmp_path / "p.db"
        config = SessionConfig(filter_kind="particle", seed=3)
        fixes = _fixes(ticks=10)
        cut = len(fixes) // 2
        store, _ = self._run_durable(
            db, fixes[:cut], config=config, plan=_plan(), checkpoint_every=7
        )
        store.close()

        reopened = SessionStore(db, group_commit=4)
        recovered, _ = recover(
            reopened, _zones(), config, plan=_plan(), checkpoint_every=7
        )
        _feed(recovered, fixes[cut:])

        baseline = SessionManager(_zones(), config, plan=_plan())
        _feed(baseline, fixes)

        # Byte-identical events AND bit-identical filter state (particle
        # clouds advanced through the restored RNGs).
        assert recovered.log.digest() == baseline.log.digest()
        for object_id in baseline.object_ids():
            a = recovered.session(object_id).filter.estimate()
            b = baseline.session(object_id).filter.estimate()
            assert a == b, object_id
        reopened.close()

    def test_evictions_and_geofence_state_survive_recovery(self, tmp_path):
        db = tmp_path / "e.db"
        rules = (
            GeofenceRule(zone="z0-0", forbidden=True),
            GeofenceRule(zone="z0-1", max_occupancy=1),
            GeofenceRule(zone="z1-2", max_dwell_s=2.0),
        )
        config = SessionConfig(
            idle_timeout_s=4.0, enter_debounce=1, exit_debounce=1
        )
        # obj-2 goes dark after t=5 so the t=11 sweep really evicts it.
        fixes = [
            row
            for row in _fixes(ticks=14)
            if not (row[0] == "obj-2" and row[1] > 5.0)
        ]
        store, durable = self._run_durable(
            db, fixes, config=config, rules=rules, evict_at=(11.0,),
            checkpoint_every=9,
        )
        assert durable.sessions_evicted_total == 1
        assert "evict" in {e.kind for e in store.journal_tail()}
        pre_crash_state = json.dumps(durable.state_dict(), sort_keys=True)
        store.close()

        reopened = SessionStore(db, group_commit=4)
        recovered, report = recover(
            reopened, _zones(), config, rules, checkpoint_every=9
        )
        assert json.dumps(recovered.state_dict(), sort_keys=True) == pre_crash_state
        assert recovered.sessions_evicted_total == 1
        assert report.events == len(recovered.log)
        reopened.close()

    def test_group_commit_tail_loss_is_refed_deterministically(self, tmp_path):
        """A lost unflushed tail re-applies from the fix count onward."""
        db = tmp_path / "t.db"
        fixes = _fixes()
        cut = 20
        store = SessionStore(db, group_commit=6)
        manager = SessionManager(_zones(), store=store, checkpoint_every=8)
        _feed(manager, fixes[:cut])
        # Simulate SIGKILL: the group-commit buffer never reached disk
        # (no sync() — rows 17..20 sit in memory and die with the process).
        store._pending.clear()
        store.close()

        reopened = SessionStore(db, group_commit=6)
        durable_fixes = reopened.fix_count()
        assert durable_fixes < cut  # some tail really was lost
        recovered, _ = recover(reopened, _zones(), checkpoint_every=8)
        # The deterministic feed resumes at the durable fix count.
        _feed(recovered, fixes[durable_fixes:])
        recovered.sync()

        baseline = SessionManager(_zones())
        _feed(baseline, fixes)
        assert recovered.log.digest() == baseline.log.digest()
        # Zero lost confirmed inputs: every flushed fix is in the journal.
        assert reopened.fix_count() == len(fixes)
        reopened.close()

    def test_recovered_log_chains_onto_pre_crash_prefix(self, tmp_path):
        db = tmp_path / "c.db"
        fixes = _fixes()
        store, durable = self._run_durable(db, fixes[:18])
        prefix_len = len(durable.log)
        prefix_chain = durable.log.chain_at(prefix_len)
        store.close()

        reopened = SessionStore(db, group_commit=4)
        recovered, _ = recover(reopened, _zones())
        _feed(recovered, fixes[18:])
        # Agreement at the shared length certifies byte-identity of the
        # whole pre-crash prefix, not just its final line.
        assert recovered.log.chain_at(prefix_len) == prefix_chain
        reopened.close()

    def test_tampered_chain_raises_recovery_error(self, tmp_path):
        db = tmp_path / "bad.db"
        store, _ = self._run_durable(db, _fixes(), checkpoint_every=1000)
        store.close()
        with sqlite3.connect(db) as conn:
            conn.execute(
                "UPDATE journal SET chain = ? WHERE seq ="
                " (SELECT MAX(seq) FROM journal)",
                ("0" * 64,),
            )
        reopened = SessionStore(db)
        with pytest.raises(RecoveryError, match="diverged"):
            recover(reopened, _zones())
        reopened.close()

    def test_unknown_journal_kind_raises(self, tmp_path):
        db = tmp_path / "kind.db"
        with SessionStore(db, group_commit=1) as store:
            store.append_journal("teleport", "a", 0.0, {}, CHAIN_SEED)
        reopened = SessionStore(db)
        with pytest.raises(RecoveryError, match="unknown kind"):
            recover(reopened, _zones())
        reopened.close()

    def test_recover_from_empty_store(self, tmp_path):
        with SessionStore(tmp_path / "empty.db") as store:
            manager, report = recover(store, _zones())
            assert len(manager.log) == 0
            assert report.snapshot_seq == 0
            assert report.replayed == 0
            assert report.chain == CHAIN_SEED

    def test_recovered_manager_keeps_journaling(self, tmp_path):
        db = tmp_path / "cont.db"
        fixes = _fixes()
        store, _ = self._run_durable(db, fixes[:9], group_commit=1)
        store.close()
        reopened = SessionStore(db, group_commit=1)
        before = reopened.last_seq()
        recovered, _ = recover(reopened, _zones())
        _feed(recovered, fixes[9:12])
        # Post-recovery inputs land after the pre-crash sequence.
        assert reopened.last_seq() == before + 3
        reopened.close()


class TestRecoveryProperty:
    """Hypothesis: for *any* fix stream, crash point, and checkpoint /
    group-commit cadence, flushed-journal recovery plus the remaining
    feed is byte-identical to a run that never crashed."""

    @settings(max_examples=25, deadline=None)
    @given(
        stream_seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_fixes=st.integers(min_value=1, max_value=36),
        crash_at=st.integers(min_value=0, max_value=36),
        checkpoint_every=st.integers(min_value=1, max_value=12),
        group_commit=st.integers(min_value=1, max_value=8),
    )
    def test_snapshot_plus_replay_is_byte_identical(
        self, stream_seed, n_fixes, crash_at, checkpoint_every, group_commit
    ):
        crash_at = min(crash_at, n_fixes)
        rng = np.random.default_rng(np.random.SeedSequence([stream_seed]))
        fixes = [
            (
                f"obj-{int(rng.integers(0, 3))}",
                float(i),
                Point(*rng.uniform((0.5, 0.5), (11.5, 7.5))),
                float(rng.uniform(0.2, 1.0)),
            )
            for i in range(n_fixes)
        ]
        with tempfile.TemporaryDirectory() as td:
            db = Path(td) / "prop.db"
            store = SessionStore(db, group_commit=group_commit)
            manager = SessionManager(
                _zones(), store=store, checkpoint_every=checkpoint_every
            )
            _feed(manager, fixes[:crash_at])
            manager.sync()
            store.close()

            reopened = SessionStore(db, group_commit=group_commit)
            recovered, report = recover(
                reopened, _zones(), checkpoint_every=checkpoint_every
            )
            _feed(recovered, fixes[crash_at:])

            baseline = SessionManager(_zones())
            _feed(baseline, fixes)

            assert recovered.log.digest() == baseline.log.digest()
            assert json.dumps(
                recovered.state_dict(), sort_keys=True
            ) == json.dumps(baseline.state_dict(), sort_keys=True)
            assert report.snapshot_seq + report.replayed == crash_at
            reopened.close()
