"""Tests for session events, geofence rules, the log, and analytics."""

import json

import pytest

from repro.sessions import (
    EVENT_KINDS,
    EventLog,
    GeofenceRule,
    SessionEvent,
    ZoneAnalytics,
)


class TestSessionEvent:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            SessionEvent(0, "teleport", "tag-1", "a", 0.0)

    def test_wire_dict_is_kind_specific(self):
        enter = SessionEvent(0, "enter", "tag-1", "a", 1.0)
        assert set(enter.to_dict()) == {"seq", "kind", "object_id", "zone", "t_s"}
        exit_ = SessionEvent(1, "exit", "tag-1", "a", 2.0, dwell_s=1.0)
        assert exit_.to_dict()["dwell_s"] == 1.0
        alert = SessionEvent(2, "alert", "tag-1", "a", 2.0, rule="r", detail="d")
        assert alert.to_dict()["rule"] == "r"
        assert alert.to_dict()["detail"] == "d"


class TestGeofenceRule:
    def test_exactly_one_condition(self):
        with pytest.raises(ValueError):
            GeofenceRule(zone="a")
        with pytest.raises(ValueError):
            GeofenceRule(zone="a", forbidden=True, max_occupancy=2)

    def test_bounds(self):
        with pytest.raises(ValueError):
            GeofenceRule(zone="a", max_occupancy=0)
        with pytest.raises(ValueError):
            GeofenceRule(zone="a", max_dwell_s=0.0)

    def test_derived_names(self):
        assert GeofenceRule(zone="a", forbidden=True).name == "forbidden:a"
        assert GeofenceRule(zone="a", max_occupancy=3).name == "occupancy:a>3"
        assert GeofenceRule(zone="a", max_dwell_s=2.5).name == "dwell:a>2.5s"
        assert GeofenceRule(zone="a", forbidden=True, name="cage").name == "cage"


class TestEventLog:
    def test_append_restamps_sequence(self):
        log = EventLog()
        first = log.append(SessionEvent(99, "enter", "tag-1", "a", 0.0))
        second = log.append(SessionEvent(99, "exit", "tag-1", "a", 1.0))
        assert (first.seq, second.seq) == (0, 1)
        assert len(log) == 2

    def test_counts_cover_all_kinds(self):
        log = EventLog()
        log.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        counts = log.counts()
        assert set(counts) == set(EVENT_KINDS)
        assert counts["enter"] == 1
        assert counts["exit"] == 0

    def test_jsonl_is_canonical(self):
        log = EventLog()
        log.append(SessionEvent(0, "enter", "tag-1", "a", 1.0))
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["zone"] == "a"
        # Sorted keys + compact separators: re-serializing must be a
        # no-op, which is what makes the digest a byte-identity witness.
        assert lines[0] == json.dumps(
            json.loads(lines[0]), sort_keys=True, separators=(",", ":")
        )

    def test_digest_is_order_and_content_sensitive(self):
        a, b, c = EventLog(), EventLog(), EventLog()
        a.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        a.append(SessionEvent(0, "exit", "tag-1", "a", 1.0))
        b.append(SessionEvent(0, "exit", "tag-1", "a", 1.0))
        b.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        c.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        c.append(SessionEvent(0, "exit", "tag-1", "a", 1.0))
        assert a.digest() != b.digest()
        assert a.digest() == c.digest()


class TestZoneAnalytics:
    def test_occupancy_and_visits(self):
        stats = ZoneAnalytics(["a", "b"])
        assert stats.record_enter("a") == 1
        assert stats.record_enter("a") == 2
        assert stats.record_exit("a", 4.0) == 1
        zone = stats.zone("a")
        assert zone.peak_occupancy == 2
        assert zone.visits == 2
        assert zone.completed_visits == 1
        assert zone.mean_dwell_s() == 4.0
        assert stats.total_occupancy() == 1

    def test_snapshot_includes_quiet_zones(self):
        stats = ZoneAnalytics(["a", "b"])
        stats.record_enter("a")
        snapshot = stats.snapshot()
        assert snapshot["b"]["visits"] == 0
        assert snapshot["a"]["occupancy"] == 1

    def test_ad_hoc_zone_registered_on_first_use(self):
        stats = ZoneAnalytics([])
        stats.record_enter("pop-up")
        assert stats.occupancy("pop-up") == 1
        assert stats.occupancy("never-seen") == 0

    def test_exit_never_goes_negative(self):
        stats = ZoneAnalytics(["a"])
        assert stats.record_exit("a", 1.0) == 0
