"""Tests for session events, geofence rules, the log, and analytics."""

import json

import pytest

from repro.sessions import (
    CHAIN_SEED,
    EVENT_KINDS,
    EventLog,
    GeofenceRule,
    SessionEvent,
    ZoneAnalytics,
)


def _sample_events(n):
    kinds = ("enter", "exit", "alert", "evicted")
    out = []
    for i in range(n):
        kind = kinds[i % 4]
        out.append(
            SessionEvent(
                0,
                kind,
                f"tag-{i % 3}",
                "" if kind == "evicted" else "a",
                float(i),
                dwell_s=1.5 if kind == "exit" else 0.0,
                rule="r" if kind == "alert" else "",
                detail="d" if kind == "alert" else "",
            )
        )
    return out


class TestSessionEvent:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            SessionEvent(0, "teleport", "tag-1", "a", 0.0)

    def test_wire_dict_is_kind_specific(self):
        enter = SessionEvent(0, "enter", "tag-1", "a", 1.0)
        assert set(enter.to_dict()) == {"seq", "kind", "object_id", "zone", "t_s"}
        exit_ = SessionEvent(1, "exit", "tag-1", "a", 2.0, dwell_s=1.0)
        assert exit_.to_dict()["dwell_s"] == 1.0
        alert = SessionEvent(2, "alert", "tag-1", "a", 2.0, rule="r", detail="d")
        assert alert.to_dict()["rule"] == "r"
        assert alert.to_dict()["detail"] == "d"


class TestGeofenceRule:
    def test_exactly_one_condition(self):
        with pytest.raises(ValueError):
            GeofenceRule(zone="a")
        with pytest.raises(ValueError):
            GeofenceRule(zone="a", forbidden=True, max_occupancy=2)

    def test_bounds(self):
        with pytest.raises(ValueError):
            GeofenceRule(zone="a", max_occupancy=0)
        with pytest.raises(ValueError):
            GeofenceRule(zone="a", max_dwell_s=0.0)

    def test_derived_names(self):
        assert GeofenceRule(zone="a", forbidden=True).name == "forbidden:a"
        assert GeofenceRule(zone="a", max_occupancy=3).name == "occupancy:a>3"
        assert GeofenceRule(zone="a", max_dwell_s=2.5).name == "dwell:a>2.5s"
        assert GeofenceRule(zone="a", forbidden=True, name="cage").name == "cage"


class TestEventLog:
    def test_append_restamps_sequence(self):
        log = EventLog()
        first = log.append(SessionEvent(99, "enter", "tag-1", "a", 0.0))
        second = log.append(SessionEvent(99, "exit", "tag-1", "a", 1.0))
        assert (first.seq, second.seq) == (0, 1)
        assert len(log) == 2

    def test_counts_cover_all_kinds(self):
        log = EventLog()
        log.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        counts = log.counts()
        assert set(counts) == set(EVENT_KINDS)
        assert counts["enter"] == 1
        assert counts["exit"] == 0

    def test_jsonl_is_canonical(self):
        log = EventLog()
        log.append(SessionEvent(0, "enter", "tag-1", "a", 1.0))
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["zone"] == "a"
        # Sorted keys + compact separators: re-serializing must be a
        # no-op, which is what makes the digest a byte-identity witness.
        assert lines[0] == json.dumps(
            json.loads(lines[0]), sort_keys=True, separators=(",", ":")
        )

    def test_digest_is_order_and_content_sensitive(self):
        a, b, c = EventLog(), EventLog(), EventLog()
        a.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        a.append(SessionEvent(0, "exit", "tag-1", "a", 1.0))
        b.append(SessionEvent(0, "exit", "tag-1", "a", 1.0))
        b.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        c.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        c.append(SessionEvent(0, "exit", "tag-1", "a", 1.0))
        assert a.digest() != b.digest()
        assert a.digest() == c.digest()


class TestDigestChain:
    def test_empty_log_chain_is_seed(self):
        log = EventLog()
        assert log.chain() == CHAIN_SEED
        assert log.chain_at(0) == CHAIN_SEED

    def test_chain_advances_per_event_and_prefixes_agree(self):
        a, b = EventLog(), EventLog()
        events = _sample_events(6)
        for event in events:
            a.append(event)
        heads = [a.chain_at(i) for i in range(len(events) + 1)]
        assert len(set(heads)) == len(heads)  # every link moves the head
        for i, event in enumerate(events[:4]):
            b.append(event)
            # Same prefix -> same head; the recovery comparison primitive.
            assert b.chain() == a.chain_at(i + 1)

    def test_chain_at_bounds_raise(self):
        log = EventLog()
        log.append(SessionEvent(0, "enter", "tag-1", "a", 0.0))
        with pytest.raises(ValueError):
            log.chain_at(2)
        with pytest.raises(ValueError):
            log.chain_at(-1)

    def test_from_dict_round_trips(self):
        for event in _sample_events(4):
            stamped = EventLog().append(event)
            assert SessionEvent.from_dict(stamped.to_dict()) == stamped


class TestEventLogSink:
    def test_sink_writes_canonical_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for event in _sample_events(5):
            log.append(event)
        log.close()
        assert path.read_text() == log.to_jsonl() + "\n"

    def test_load_round_trips_digest_and_chain(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, fsync=True)
        for event in _sample_events(7):
            log.append(event)
        log.close()
        loaded, dropped = EventLog.load_jsonl(path)
        assert dropped == 0
        assert loaded.to_jsonl() == log.to_jsonl()
        assert loaded.digest() == log.digest()
        assert loaded.chain() == log.chain()

    def test_rotation_bounds_live_file_and_load_reads_segments(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, rotate_bytes=200)
        for event in _sample_events(12):
            log.append(event)
        log.close()
        assert log.rotations >= 2
        segments = EventLog.segment_paths(path)
        assert segments[-1] == path
        assert len(segments) == log.rotations + 1
        for segment in segments:
            assert segment.stat().st_size <= 200
        loaded, dropped = EventLog.load_jsonl(path)
        assert dropped == 0
        assert loaded.digest() == log.digest()

    def test_truncated_final_line_detected_and_discarded(self, tmp_path):
        """A crash mid-append leaves a torn tail; load drops exactly it."""
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for event in _sample_events(6):
            log.append(event)
        log.close()
        raw = path.read_text()
        lines = raw.splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        loaded, dropped = EventLog.load_jsonl(path)
        assert dropped == 1
        assert len(loaded) == 5
        # The survivors chain onto the original prefix byte for byte.
        assert loaded.chain() == log.chain_at(5)

    def test_unterminated_but_parseable_final_line_discarded(self, tmp_path):
        # The newline never hit disk: the write may still be partial
        # (e.g. a truncated float that happens to parse), so only a
        # terminated line counts as committed.
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for event in _sample_events(3):
            log.append(event)
        log.close()
        path.write_text(path.read_text().rstrip("\n"))
        loaded, dropped = EventLog.load_jsonl(path)
        assert dropped == 1
        assert len(loaded) == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for event in _sample_events(4):
            log.append(event)
        log.close()
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = "{garbage\n"
        path.write_text("".join(lines))
        with pytest.raises(ValueError, match="corrupt"):
            EventLog.load_jsonl(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for event in _sample_events(4):
            log.append(event)
        log.close()
        lines = path.read_text().splitlines(keepends=True)
        del lines[1]
        path.write_text("".join(lines))
        with pytest.raises(ValueError, match="sequence gap"):
            EventLog.load_jsonl(path)

    def test_missing_file_and_bad_rotate_bytes(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            EventLog.load_jsonl(tmp_path / "never-written.jsonl")
        with pytest.raises(ValueError):
            EventLog(tmp_path / "x.jsonl", rotate_bytes=0)


class TestZoneAnalytics:
    def test_occupancy_and_visits(self):
        stats = ZoneAnalytics(["a", "b"])
        assert stats.record_enter("a") == 1
        assert stats.record_enter("a") == 2
        assert stats.record_exit("a", 4.0) == 1
        zone = stats.zone("a")
        assert zone.peak_occupancy == 2
        assert zone.visits == 2
        assert zone.completed_visits == 1
        assert zone.mean_dwell_s() == 4.0
        assert stats.total_occupancy() == 1

    def test_snapshot_includes_quiet_zones(self):
        stats = ZoneAnalytics(["a", "b"])
        stats.record_enter("a")
        snapshot = stats.snapshot()
        assert snapshot["b"]["visits"] == 0
        assert snapshot["a"]["occupancy"] == 1

    def test_ad_hoc_zone_registered_on_first_use(self):
        stats = ZoneAnalytics([])
        stats.record_enter("pop-up")
        assert stats.occupancy("pop-up") == 1
        assert stats.occupancy("never-seen") == 0

    def test_exit_never_goes_negative(self):
        stats = ZoneAnalytics(["a"])
        assert stats.record_exit("a", 1.0) == 0
