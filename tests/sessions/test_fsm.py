"""Tests for the zone FSM: hysteresis, handoffs, and eviction flushes."""

import pytest

from repro.sessions import FSMConfig, ObjectZoneTracker, ZoneState


def kinds(transitions):
    return [(kind, zone) for kind, zone, _, _ in transitions]


class TestFSMConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FSMConfig(enter_debounce=0)
        with pytest.raises(ValueError):
            FSMConfig(exit_debounce=0)


class TestDebounce:
    def test_enter_confirmed_after_debounce(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=2, exit_debounce=2))
        assert fsm.observe(0.0, "a") == []
        assert fsm.state("a") is ZoneState.ENTER_PENDING
        transitions = fsm.observe(1.0, "a")
        assert kinds(transitions) == [("enter", "a")]
        # Event time is the confirming fix's, not the first pending one.
        assert transitions[0][2] == 1.0
        assert fsm.state("a") is ZoneState.INSIDE

    def test_exit_confirmed_after_debounce(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=1, exit_debounce=2))
        fsm.observe(0.0, "a")
        assert fsm.observe(1.0, None) == []
        assert fsm.state("a") is ZoneState.EXIT_PENDING
        transitions = fsm.observe(2.0, None)
        assert kinds(transitions) == [("exit", "a")]
        # Dwell runs from confirmed entry to confirmed exit.
        assert transitions[0][3] == 2.0
        assert fsm.state("a") is ZoneState.OUTSIDE

    def test_debounce_one_is_immediate(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=1, exit_debounce=1))
        assert kinds(fsm.observe(0.0, "a")) == [("enter", "a")]
        assert kinds(fsm.observe(1.0, None)) == [("exit", "a")]

    def test_jitter_never_flaps(self):
        # A fix stream oscillating every tick under debounce=2 confirms
        # nothing: each contradiction resets the pending counter.
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=2, exit_debounce=2))
        for t in range(10):
            zone = "a" if t % 2 == 0 else None
            assert fsm.observe(float(t), zone) == []
        assert fsm.inside_zones() == ()

    def test_jitter_inside_zone_never_exits(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=1, exit_debounce=2))
        fsm.observe(0.0, "a")
        # Single-tick excursions keep getting re-confirmed inside.
        for t in range(1, 9):
            zone = None if t % 2 == 1 else "a"
            assert fsm.observe(float(t), zone) == []
        assert fsm.inside_zones() == ("a",)


class TestHandoffs:
    def test_same_tick_handoff_orders_exit_before_enter(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=1, exit_debounce=1))
        fsm.observe(0.0, "a")
        transitions = fsm.observe(1.0, "b")
        assert kinds(transitions) == [("exit", "a"), ("enter", "b")]

    def test_debounced_handoff_between_adjacent_zones(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=2, exit_debounce=2))
        fsm.observe(0.0, "a")
        fsm.observe(1.0, "a")  # enter a confirmed
        fsm.observe(2.0, "b")  # a exit-pending, b enter-pending
        transitions = fsm.observe(3.0, "b")
        assert kinds(transitions) == [("exit", "a"), ("enter", "b")]
        assert fsm.inside_zones() == ("b",)

    def test_contradiction_kills_pending_entry(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=3, exit_debounce=1))
        fsm.observe(0.0, "a")
        fsm.observe(1.0, "a")
        fsm.observe(2.0, "b")  # contradiction before confirmation
        assert fsm.state("a") is ZoneState.OUTSIDE
        # "a" must start over from scratch.
        fsm.observe(3.0, "a")
        fsm.observe(4.0, "a")
        assert kinds(fsm.observe(5.0, "a")) == [("enter", "a")]


class TestBookkeeping:
    def test_entered_at_tracks_confirmed_entry(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=2, exit_debounce=2))
        assert fsm.entered_at("a") is None
        fsm.observe(0.0, "a")
        assert fsm.entered_at("a") is None  # pending != inside
        fsm.observe(1.5, "a")
        assert fsm.entered_at("a") == 1.5

    def test_only_live_machines_are_stored(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=1, exit_debounce=1))
        fsm.observe(0.0, "a")
        fsm.observe(1.0, "b")
        assert set(fsm._cells) == {"b"}

    def test_flush_force_exits_confirmed_zones(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=1, exit_debounce=2))
        fsm.observe(0.0, "a")
        transitions = fsm.flush(7.0)
        assert kinds(transitions) == [("exit", "a")]
        assert transitions[0][3] == 7.0  # dwell measured to flush time
        assert fsm.inside_zones() == ()

    def test_flush_discards_pending_entries(self):
        fsm = ObjectZoneTracker(FSMConfig(enter_debounce=2, exit_debounce=2))
        fsm.observe(0.0, "a")  # never confirmed
        assert fsm.flush(1.0) == []
