"""Tests for the session manager: fleet, geofences, eviction, metrics."""

import json

import pytest

from repro.environment import FloorPlan
from repro.geometry import Point, Polygon
from repro.sessions import (
    GeofenceRule,
    SessionConfig,
    SessionManager,
    ZoneMap,
)


def _zones():
    # 2x3 grid over a 12x8 venue: 4x4 m cells named z<row>-<col>.
    return ZoneMap.grid(Polygon.rectangle(0, 0, 12, 8), 2, 3)


def _manager(rules=(), **overrides):
    overrides.setdefault("enter_debounce", 1)
    overrides.setdefault("exit_debounce", 1)
    return SessionManager(_zones(), SessionConfig(**overrides), rules)


class TestSessionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(filter_kind="magic")
        with pytest.raises(ValueError):
            SessionConfig(base_sigma_m=0)
        with pytest.raises(ValueError):
            SessionConfig(confidence_floor=0)
        with pytest.raises(ValueError):
            SessionConfig(idle_timeout_s=0)
        with pytest.raises(ValueError):
            SessionConfig(max_sessions=0)
        with pytest.raises(ValueError):
            SessionConfig(enter_debounce=0)


class TestConstruction:
    def test_particle_needs_plan(self):
        with pytest.raises(ValueError):
            SessionManager(_zones(), SessionConfig(filter_kind="particle"))
        plan = FloorPlan("room", Polygon.rectangle(0, 0, 12, 8))
        manager = SessionManager(
            _zones(), SessionConfig(filter_kind="particle"), plan=plan
        )
        update, _ = manager.observe("tag-1", 0.0, Point(2, 2))
        assert update.position is not None

    def test_rules_must_watch_known_zones(self):
        with pytest.raises(ValueError):
            _manager(rules=(GeofenceRule(zone="narnia", forbidden=True),))


class TestLifecycle:
    def test_sessions_created_on_first_fix(self):
        manager = _manager()
        assert len(manager) == 0
        manager.observe("a", 0.0, Point(2, 2))
        manager.observe("b", 0.0, Point(6, 2))
        assert len(manager) == 2
        assert manager.object_ids() == ("a", "b")
        assert manager.session("a").updates == 1
        assert manager.session("missing") is None

    def test_session_cap_enforced(self):
        manager = _manager(max_sessions=1)
        manager.observe("a", 0.0, Point(2, 2))
        with pytest.raises(RuntimeError):
            manager.observe("b", 0.0, Point(2, 2))

    def test_enter_logged_and_counted(self):
        manager = _manager()
        _, events = manager.observe("a", 0.0, Point(2, 2))
        assert [(e.kind, e.zone) for e in events] == [("enter", "z0-0")]
        assert manager.analytics.occupancy("z0-0") == 1

    def test_track_crosses_zones(self):
        manager = _manager()
        for t in range(3):
            manager.observe("a", float(t), Point(2, 2))
        emitted = []
        for t in range(3, 20):
            _, events = manager.observe("a", float(t), Point(10, 6))
            emitted.extend(events)
        kinds = [(e.kind, e.zone) for e in emitted]
        assert ("exit", "z0-0") in kinds
        assert kinds[-1] == ("enter", "z1-2")
        assert manager.session("a").fsm.inside_zones() == ("z1-2",)
        # The z0-0 exit carries the confirmed dwell.
        exit_event = next(e for e in emitted if e.kind == "exit" and e.zone == "z0-0")
        assert exit_event.dwell_s > 0

    def test_ingest_reads_response_fields(self):
        class FakeResponse:
            position = Point(2, 2)
            confidence = 0.25

        manager = _manager(base_sigma_m=1.5)
        update, _ = manager.ingest("a", 0.0, FakeResponse())
        assert update.measurement_sigma_m == pytest.approx(3.0)

    def test_ingest_defaults_confidence_when_absent(self):
        class BareResponse:
            position = Point(2, 2)

        manager = _manager(base_sigma_m=1.5)
        update, _ = manager.ingest("a", 0.0, BareResponse())
        assert update.measurement_sigma_m == 1.5


class TestEviction:
    def test_idle_sessions_evicted_with_synthetic_exits(self):
        manager = _manager(idle_timeout_s=10.0)
        manager.observe("a", 0.0, Point(2, 2))
        manager.observe("b", 8.0, Point(6, 2))
        events = manager.evict_idle(15.0)
        # Only "a" idled past 10 s; dwell measured to its last fix.
        assert [(e.kind, e.object_id) for e in events] == [
            ("exit", "a"),
            ("evicted", "a"),
        ]
        assert events[0].zone == "z0-0"
        assert events[0].t_s == 0.0
        assert len(manager) == 1
        assert manager.analytics.occupancy("z0-0") == 0
        assert manager.sessions_evicted_total == 1

    def test_fresh_fix_restarts_session(self):
        manager = _manager(idle_timeout_s=10.0)
        manager.observe("a", 0.0, Point(2, 2))
        manager.evict_idle(20.0)
        manager.observe("a", 21.0, Point(2, 2))
        assert manager.sessions_started_total == 2


class TestGeofences:
    def test_forbidden_zone_alerts_on_every_entry(self):
        rule = GeofenceRule(zone="z0-2", forbidden=True)
        manager = _manager(rules=(rule,))
        _, events = manager.observe("a", 0.0, Point(10, 2))
        assert [e.kind for e in events] == ["enter", "alert"]
        assert events[1].rule == "forbidden:z0-2"
        _, events = manager.observe("b", 0.0, Point(10, 2))
        assert [e.kind for e in events] == ["enter", "alert"]

    def test_occupancy_cap_trips_once_and_rearms(self):
        rule = GeofenceRule(zone="z0-0", max_occupancy=1)
        manager = _manager(rules=(rule,), idle_timeout_s=5.0)
        manager.observe("a", 0.0, Point(2, 2))
        _, events = manager.observe("b", 0.0, Point(2, 2))
        assert [e.kind for e in events] == ["enter", "alert"]
        # Already tripped: a third entrant does not re-alert.
        _, events = manager.observe("c", 0.0, Point(2, 2))
        assert [e.kind for e in events] == ["enter"]
        # Drop occupancy back to the cap: rule re-arms.
        manager.observe("a", 6.0, Point(2, 2))
        manager.evict_idle(6.0)  # evicts b and c (idle since t=0)
        assert manager.analytics.occupancy("z0-0") == 1
        _, events = manager.observe("d", 7.0, Point(2, 2))
        assert [e.kind for e in events] == ["enter", "alert"]

    def test_dwell_overstay_alerts_once_per_visit(self):
        rule = GeofenceRule(zone="z0-0", max_dwell_s=5.0)
        manager = _manager(rules=(rule,), idle_timeout_s=100.0)
        alerts = []
        for t in range(9):
            _, events = manager.observe("a", float(t), Point(2, 2))
            alerts.extend(e for e in events if e.kind == "alert")
        assert len(alerts) == 1
        assert alerts[0].rule == "dwell:z0-0>5s"
        assert "exceeds 5s" in alerts[0].detail


class TestMetrics:
    def test_snapshot_shape(self):
        manager = _manager()
        manager.observe("a", 0.0, Point(2, 2))
        snapshot = manager.metrics_snapshot()
        assert snapshot["sessions_active"] == 1
        assert snapshot["sessions_started_total"] == 1
        assert snapshot["updates_total"] == 1
        assert snapshot["events_total"] == 1
        assert snapshot["occupancy_total"] == 1
        assert snapshot["zones"]["z0-0"]["visits"] == 1
        assert len(snapshot["event_log_digest"]) == 64

    def test_metrics_json_serializable(self):
        manager = _manager()
        manager.observe("a", 0.0, Point(2, 2))
        json.dumps(manager.metrics_json())
