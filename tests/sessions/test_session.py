"""Tests for per-object sessions and the confidence-to-noise mapping."""

import math

import pytest

from repro.geometry import Point, Polygon
from repro.sessions import (
    FSMConfig,
    TrackingSession,
    ZoneMap,
    confidence_to_sigma,
)
from repro.tracking import KalmanTracker


def _zones():
    return ZoneMap.grid(Polygon.rectangle(0, 0, 12, 8), 2, 3)


def _session(**kwargs):
    kwargs.setdefault("fsm_config", FSMConfig(1, 1))
    return TrackingSession("tag-1", KalmanTracker(), _zones(), **kwargs)


class TestConfidenceToSigma:
    def test_full_confidence_is_identity(self):
        assert confidence_to_sigma(1.5, 1.0) == 1.5

    def test_low_confidence_inflates(self):
        assert confidence_to_sigma(1.5, 0.25) == pytest.approx(3.0)

    def test_floor_bounds_inflation(self):
        capped = confidence_to_sigma(1.5, 0.0, floor=0.04)
        assert capped == pytest.approx(1.5 / math.sqrt(0.04))
        assert confidence_to_sigma(1.5, -5.0, floor=0.04) == capped

    def test_overconfidence_clamped(self):
        assert confidence_to_sigma(1.5, 7.0) == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            confidence_to_sigma(0.0, 0.5)
        with pytest.raises(ValueError):
            confidence_to_sigma(1.5, 0.5, floor=0.0)
        with pytest.raises(ValueError):
            confidence_to_sigma(1.5, 0.5, floor=1.5)


class TestTrackingSession:
    def test_needs_object_id(self):
        with pytest.raises(ValueError):
            TrackingSession("", KalmanTracker(), _zones())

    def test_observe_reports_zone_and_sigma(self):
        session = _session(base_sigma_m=1.5)
        update = session.observe(0.0, Point(2, 2))
        assert update.zone == "z0-0"
        assert update.measurement_sigma_m == 1.5
        assert update.transitions == [("enter", "z0-0", 0.0, 0.0)]
        assert update.sigma_m > 0

    def test_confidence_modulates_measurement_noise(self):
        session = _session(base_sigma_m=1.5)
        update = session.observe(0.0, Point(2, 2), confidence=0.25)
        assert update.measurement_sigma_m == pytest.approx(3.0)

    def test_blind_arm_ignores_confidence(self):
        session = _session(base_sigma_m=1.5, modulate_noise=False)
        update = session.observe(0.0, Point(2, 2), confidence=0.01)
        assert update.measurement_sigma_m == 1.5

    def test_low_confidence_fix_deweighted_not_dropped(self):
        wary = _session()
        blind = _session(modulate_noise=False)
        for s in (wary, blind):
            for t in range(5):
                s.observe(float(t), Point(2, 2))
        outlier = Point(10, 6)
        wary_pos = wary.observe(5.0, outlier, confidence=0.0).position
        blind_pos = blind.observe(5.0, outlier, confidence=0.0).position
        # Both moved (never dropped)...
        assert wary_pos.distance_to(Point(2, 2)) > 0
        # ...but the modulated arm moved far less.
        assert wary_pos.distance_to(Point(2, 2)) < blind_pos.distance_to(
            Point(2, 2)
        )

    def test_time_must_not_go_backwards(self):
        session = _session()
        session.observe(5.0, Point(2, 2))
        with pytest.raises(ValueError):
            session.observe(4.0, Point(2, 2))

    def test_zone_computed_from_filtered_position(self):
        # After a long dwell the filter barely moves on one outlier fix:
        # the raw fix is in another zone, the track (and FSM) is not.
        session = _session()
        for t in range(10):
            session.observe(float(t), Point(2, 2))
        update = session.observe(10.0, Point(11, 7), confidence=0.0)
        assert update.zone == "z0-0"

    def test_idle_and_close(self):
        session = _session()
        assert session.idle_for(100.0) == math.inf
        session.observe(1.0, Point(2, 2))
        assert session.idle_for(5.0) == 4.0
        exits = session.close(9.0)
        assert exits == [("exit", "z0-0", 9.0, 8.0)]
