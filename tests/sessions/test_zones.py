"""Tests for zones: deterministic primary assignment and grid maps."""

import pytest

from repro.geometry import Point, Polygon
from repro.sessions import Zone, ZoneMap


def _rect(x0, y0, x1, y1):
    return Polygon.rectangle(x0, y0, x1, y1)


class TestZone:
    def test_needs_name(self):
        with pytest.raises(ValueError):
            Zone("", _rect(0, 0, 1, 1))

    def test_contains_boundary_inclusive(self):
        zone = Zone("a", _rect(0, 0, 4, 4))
        assert zone.contains(Point(2, 2))
        assert zone.contains(Point(0, 0))
        assert zone.contains(Point(4, 2))
        assert not zone.contains(Point(5, 2))


class TestZoneMap:
    def test_needs_zones_and_unique_names(self):
        with pytest.raises(ValueError):
            ZoneMap([])
        with pytest.raises(ValueError):
            ZoneMap([Zone("a", _rect(0, 0, 1, 1)), Zone("a", _rect(1, 0, 2, 1))])

    def test_lookup(self):
        zones = ZoneMap([Zone("a", _rect(0, 0, 1, 1))])
        assert zones.zone("a").name == "a"
        with pytest.raises(KeyError):
            zones.zone("nope")

    def test_primary_is_first_match(self):
        # Overlapping zones: the earlier one wins everywhere it contains.
        zones = ZoneMap(
            [Zone("first", _rect(0, 0, 6, 4)), Zone("second", _rect(4, 0, 10, 4))]
        )
        assert zones.primary(Point(5, 2)) == "first"
        assert zones.primary(Point(7, 2)) == "second"
        assert zones.primary(Point(11, 2)) is None

    def test_membership_reports_all(self):
        zones = ZoneMap(
            [Zone("first", _rect(0, 0, 6, 4)), Zone("second", _rect(4, 0, 10, 4))]
        )
        assert zones.membership(Point(5, 2)) == ("first", "second")


class TestGridMap:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ZoneMap.grid(_rect(0, 0, 10, 10), 0, 3)

    def test_names_row_major(self):
        zones = ZoneMap.grid(_rect(0, 0, 12, 8), 2, 3)
        assert zones.names() == ("z0-0", "z0-1", "z0-2", "z1-0", "z1-1", "z1-2")

    def test_interior_points(self):
        zones = ZoneMap.grid(_rect(0, 0, 12, 8), 2, 3)
        assert zones.primary(Point(2, 2)) == "z0-0"
        assert zones.primary(Point(10, 6)) == "z1-2"

    def test_boundary_tie_resolves_to_lower_index(self):
        # A fix exactly on a shared edge belongs to both cells; the
        # lower-indexed (north/west) one must win, deterministically.
        zones = ZoneMap.grid(_rect(0, 0, 12, 8), 2, 3)
        assert zones.primary(Point(4.0, 2.0)) == "z0-0"  # z0-0 | z0-1 edge
        assert zones.primary(Point(2.0, 4.0)) == "z0-0"  # z0-0 | z1-0 edge
        assert zones.primary(Point(4.0, 4.0)) == "z0-0"  # four-corner point

    def test_fast_path_agrees_with_ordered_scan(self):
        grid = ZoneMap.grid(_rect(0, 0, 12, 8), 3, 4)
        scan = ZoneMap(list(grid))  # same zones, no grid acceleration
        points = [
            Point(x * 0.75, y * 0.5) for x in range(17) for y in range(17)
        ]
        for p in points:
            assert grid.primary(p) == scan.primary(p), p

    def test_outside_bounding_box(self):
        zones = ZoneMap.grid(_rect(0, 0, 12, 8), 2, 3)
        assert zones.primary(Point(-1, -1)) is None
        assert zones.primary(Point(13, 9)) is None
