"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_locate_args(self):
        args = build_parser().parse_args(
            ["locate", "lab", "3.0", "4.0", "--static", "--seed", "9"]
        )
        assert args.scenario == "lab"
        assert args.x == 3.0
        assert args.static
        assert args.seed == 9

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestScenariosCommand:
    def test_lists_and_renders(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "lab" in out and "lobby" in out
        assert "AP1" in out
        assert "#" in out  # the map


class TestLocateCommand:
    def test_happy_path(self, capsys):
        rc = main(["locate", "lab", "6.4", "4.2", "--packets", "5", "--no-map"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nomadic estimate" in out
        assert "error" in out

    def test_static_mode(self, capsys):
        rc = main(
            ["locate", "lab", "6.4", "4.2", "--packets", "5", "--static", "--no-map"]
        )
        assert rc == 0
        assert "static estimate" in capsys.readouterr().out

    def test_map_rendered_by_default(self, capsys):
        main(["locate", "lab", "6.4", "4.2", "--packets", "5"])
        out = capsys.readouterr().out
        assert "T" in out and "E" in out

    def test_unknown_scenario(self, capsys):
        assert main(["locate", "mall", "1", "1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_outside_venue(self, capsys):
        assert main(["locate", "lab", "99", "99"]) == 2
        assert "outside" in capsys.readouterr().err


class TestExperimentCommand:
    def test_fig3(self, capsys):
        assert main(["experiment", "fig3", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "LOS" in out and "NLOS" in out
        assert "first-tap ratio" in out

    def test_fig7(self, capsys):
        assert main(["experiment", "fig7", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "PDP accuracy" in out
        assert "mean accuracy" in out

    def test_fig9(self, capsys):
        rc = main(
            [
                "experiment", "fig9", "--scenario", "lab",
                "--repetitions", "1", "--packets", "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "static" in out and "nomadic" in out

    def test_fig10(self, capsys):
        rc = main(
            [
                "experiment", "fig10", "--scenario", "lab",
                "--repetitions", "1", "--packets", "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ER=0" in out and "ER=3" in out


class TestHeatmapCommand:
    def test_renders(self, capsys):
        rc = main(
            ["heatmap", "lab", "--spacing", "3.0", "--packets", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean error" in out and "SLV" in out
        assert "#" in out  # boundary

    def test_static_flag(self, capsys):
        rc = main(
            ["heatmap", "lab", "--static", "--spacing", "4.0", "--packets", "3"]
        )
        assert rc == 0
        assert "static deployment" in capsys.readouterr().out

    def test_unknown_scenario(self, capsys):
        assert main(["heatmap", "mall"]) == 2


class TestRecordReplayCommands:
    def test_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        rc = main(
            ["record", "lab", str(path), "--packets", "5", "--seed", "4"]
        )
        assert rc == 0
        assert path.exists()
        assert "recorded" in capsys.readouterr().out

        rc = main(["replay", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean" in out and "SLV" in out

        rc = main(["replay", str(path), "--paper-literal"])
        assert rc == 0

    def test_replay_missing_file(self, capsys):
        assert main(["replay", "/nonexistent/file.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_record_unknown_scenario(self, capsys):
        assert main(["record", "mall", "/tmp/x.json"]) == 2


class TestBatchLocateCommand:
    def test_happy_path_with_selftest(self, capsys):
        rc = main(
            ["batch-locate", "lab", "-n", "4", "--packets", "3", "--selftest"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean error" in out
        assert "topology cache" in out
        assert "SELFTEST OK" in out

    def test_pooled_and_uncached(self, capsys):
        rc = main(
            [
                "batch-locate", "lobby", "-n", "3", "--packets", "3",
                "--workers", "2", "--no-cache",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "topology cache" not in out  # caches disabled

    def test_unknown_scenario(self, capsys):
        assert main(["batch-locate", "mall"]) == 2
        assert "error" in capsys.readouterr().err


class TestServeCommand:
    def test_simulated_serving_run(self, capsys):
        rc = main(
            ["serve", "lab", "--queries", "5", "--packets", "3",
             "--workers", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving 5 queries" in out
        assert "served 5 queries" in out
        assert "p95" in out

    def test_sequential_default(self, capsys):
        rc = main(["serve", "lab", "--queries", "3", "--packets", "3"])
        assert rc == 0
        assert "sequential" in capsys.readouterr().out

    def test_unknown_scenario(self, capsys):
        assert main(["serve", "mall"]) == 2


class TestClusterCommand:
    def test_selftest_against_sequential_service(self, capsys):
        rc = main(
            ["cluster", "lab", "--queries", "6", "--packets", "3",
             "--shards", "2", "--replicas", "2", "--selftest"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 shard(s) x 2 replica(s)" in out
        assert "availability 100.0%" in out
        assert "SELFTEST OK" in out

    def test_crash_drill_fails_over(self, capsys):
        from repro.cluster import ShardRouter, route_key
        from repro.environment import get_scenario

        # Crash the primary the router actually picks for the lab venue.
        key = route_key(get_scenario("lab").plan.boundary)
        shard, order = ShardRouter(1, 2).route(key)
        rc = main(
            ["cluster", "lab", "--queries", "5", "--packets", "3",
             "--shards", "1", "--replicas", "2",
             "--crash", f"{shard}:{order[0]}:0", "--selftest"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 faults scripted" in out
        assert "availability 100.0%" in out
        assert "failovers 1" in out
        assert "SELFTEST OK" in out

    def test_bad_fault_spec_rejected(self, capsys):
        assert main(["cluster", "lab", "--crash", "bogus"]) == 2
        assert "bad --crash spec" in capsys.readouterr().err

    def test_parser_accepts_cluster_flags(self):
        args = build_parser().parse_args(
            ["cluster", "lab", "--shards", "3", "--replicas", "2",
             "--stale", "0:1:4:9", "--heartbeat-every", "5"]
        )
        assert args.shards == 3
        assert args.replicas == 2
        assert args.stale == ["0:1:4:9"]
        assert args.heartbeat_every == 5


class TestGuardCommand:
    def test_selftest_passes(self, capsys):
        assert main(["guard", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "GUARD SELFTEST OK" in out
        assert "zero-fault-bit-identical" in out
        assert "phase-smear-salvaged" in out

    def test_fault_drill_reports_verdicts(self, capsys):
        rc = main(
            ["guard", "lab", "-n", "3", "--packets", "8",
             "--faults", "nan-burst:0.5:AP2",
             "--faults", "ap-outage:1.0:AP3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 fault(s) scheduled, gating ON" in out
        assert "degraded: AP2" in out
        assert "rejected: AP3" in out
        assert "confidence" in out

    def test_clean_drill_keeps_full_confidence(self, capsys):
        rc = main(["guard", "lab", "-n", "2", "--packets", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "confidence 1.00" in out
        assert "0 degraded link(s), 0 rejected link(s)" in out

    def test_no_gate_arm(self, capsys):
        rc = main(
            ["guard", "lab", "-n", "2", "--packets", "8", "--no-gate",
             "--faults", "nan-burst:0.3:AP2"]
        )
        assert rc == 0
        assert "gating OFF" in capsys.readouterr().out

    def test_bad_fault_spec_rejected(self, capsys):
        assert main(["guard", "lab", "--faults", "gremlins:0.5"]) == 2
        assert "unknown fault type" in capsys.readouterr().err

    def test_bad_count_rejected(self, capsys):
        assert main(["guard", "lab", "-n", "0"]) == 2

    def test_parser_defaults(self):
        args = build_parser().parse_args(["guard"])
        assert args.scenario == "lab"
        assert args.faults == []
        assert not args.selftest
        assert args.seed == 7


class TestTrackCommand:
    def test_small_run_reports_sessions(self, capsys):
        rc = main(
            ["track", "lab", "--objects", "2", "--steps", "4",
             "--packets", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tracked 2 object(s) for 4 ticks" in out
        assert "obj-000" in out and "obj-001" in out
        assert "track error median" in out
        assert "event log digest" in out

    def test_blind_arm_flagged_in_output(self, capsys):
        rc = main(
            ["track", "lab", "--objects", "1", "--steps", "3",
             "--packets", "3", "--blind"]
        )
        assert rc == 0
        assert "blind noise" in capsys.readouterr().out

    def test_bad_args_rejected(self, capsys):
        assert main(["track", "lab", "--zones", "3by3"]) == 2
        assert "ROWSxCOLS" in capsys.readouterr().err
        assert main(["track", "lab", "--objects", "0"]) == 2
        assert main(["track", "lab", "--steps", "1"]) == 2
        assert main(["track", "lab", "--corrupt", "1.5"]) == 2

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["track", "nowhere"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["track", "lab"])
        assert args.objects == 3
        assert args.steps == 10
        assert args.zones == "2x3"
        assert args.filter == "kalman"
        assert args.corrupt == 0.0
        assert not args.blind
        assert not args.selftest


class TestProfileCommand:
    def test_stage_breakdown_covers_pipeline(self, capsys):
        rc = main(["profile", "lab", "-n", "2", "--packets", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profiled 2 queries" in out
        for stage in ("csi", "cir", "constraints", "lp.solve", "merge"):
            assert stage in out, f"stage {stage} missing from breakdown"
        assert "simplex.pivots" in out  # pivot counter surfaced

    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        from repro.obs import load_jsonl

        path = tmp_path / "traces.jsonl"
        rc = main(
            ["profile", "lab", "-n", "1", "--packets", "3",
             "--trace-out", str(path)]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        spans = load_jsonl(path)
        assert spans and {s.name for s in spans} >= {"lp.solve", "merge"}

    def test_bad_count(self, capsys):
        assert main(["profile", "lab", "-n", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_scenario(self, capsys):
        assert main(["profile", "mall"]) == 2

    def test_leaves_tracing_disabled(self):
        from repro import obs

        assert main(["profile", "lab", "-n", "1", "--packets", "3"]) == 0
        assert not obs.is_enabled()


class TestServingTraceFlag:
    def test_serve_trace_reports_stage_breakdown(self, capsys):
        from repro import obs

        try:
            rc = main(
                ["serve", "lab", "--queries", "2", "--packets", "3",
                 "--trace"]
            )
        finally:
            obs.disable()
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out
        assert "serve.query" in out

    def test_batch_locate_trace_reports_stage_breakdown(self, capsys):
        from repro import obs

        try:
            rc = main(
                ["batch-locate", "lab", "-n", "2", "--packets", "3",
                 "--trace"]
            )
        finally:
            obs.disable()
        assert rc == 0
        assert "stage breakdown" in capsys.readouterr().out


class TestGatewayCommand:
    def test_parser_accepts_gateway_flags(self):
        args = build_parser().parse_args(
            ["gateway", "lobby", "--host", "0.0.0.0", "--port", "8080",
             "--db", "/tmp/x.db", "--shards", "2", "--replicas", "3",
             "--solver-workers", "4", "--selftest"]
        )
        assert args.scenario == "lobby"
        assert args.host == "0.0.0.0"
        assert args.port == 8080
        assert args.db == "/tmp/x.db"
        assert args.shards == 2
        assert args.replicas == 3
        assert args.solver_workers == 4
        assert args.selftest

    def test_gateway_defaults(self):
        args = build_parser().parse_args(["gateway"])
        assert args.scenario == "lab"
        assert args.port == 0
        assert args.db == "gateway.db"
        assert args.shards == 1 and args.replicas == 1

    def test_selftest_round_trip(self, capsys):
        rc = main(["gateway", "lab", "--selftest", "--packets", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 mismatches" in out
        assert "drain durability" in out
        assert "SELFTEST OK" in out

    def test_unknown_scenario(self, capsys):
        assert main(["gateway", "mall", "--selftest"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_cluster_shape_rejected(self, capsys):
        assert main(["gateway", "lab", "--shards", "0"]) == 2
        assert "error" in capsys.readouterr().err
