"""Public-API hygiene: exports exist, are documented, and import cleanly."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.geometry",
    "repro.optimize",
    "repro.channel",
    "repro.environment",
    "repro.mobility",
    "repro.core",
    "repro.baselines",
    "repro.net",
    "repro.eval",
    "repro.serving",
    "repro.cluster",
    "repro.guard",
    "repro.extensions",
    "repro.tracking",
    "repro.sessions",
    "repro.planning",
    "repro.viz",
    "repro.data",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
class TestPublicAPI:
    def test_imports(self, module_name):
        importlib.import_module(module_name)

    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_all_exports_exist(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_every_public_item_documented(self, module_name):
        """Deliverable (e): doc comments on every public item."""
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
                if inspect.isclass(obj):
                    for meth_name, meth in inspect.getmembers(
                        obj, inspect.isfunction
                    ):
                        if meth_name.startswith("_"):
                            continue
                        if meth.__qualname__.split(".")[0] != obj.__name__:
                            continue  # inherited from elsewhere
                        assert meth.__doc__, (
                            f"{module_name}.{name}.{meth_name} lacks a "
                            "docstring"
                        )


class TestVersioning:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
