"""Tests for the Kalman tracker and the filter comparison."""

import numpy as np
import pytest

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.geometry import Point
from repro.tracking import (
    KalmanConfig,
    KalmanTracker,
    NomLocTracker,
    waypoint_trajectory,
)


class TestKalmanConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            KalmanConfig(acceleration_noise=0)
        with pytest.raises(ValueError):
            KalmanConfig(measurement_sigma_m=0)
        with pytest.raises(ValueError):
            KalmanConfig(initial_position_sigma_m=0)


class TestKalmanTracker:
    def test_first_update_initializes(self):
        kf = KalmanTracker()
        kf.step(0.0, Point(3, 4))
        assert kf.estimate().almost_equals(Point(3, 4))
        assert kf.updates == 1

    def test_converges_on_static_target(self):
        # A static target calls for low manoeuvre noise; with the default
        # CV tuning the filter deliberately keeps ~1 m of slack.
        kf = KalmanTracker(KalmanConfig(acceleration_noise=0.05))
        rng = np.random.default_rng(0)
        truth = Point(5, 5)
        for _ in range(30):
            noisy = Point(truth.x + rng.normal(0, 1.0), truth.y + rng.normal(0, 1.0))
            kf.step(1.0, noisy)
        assert kf.estimate().distance_to(truth) < 0.7
        assert kf.position_sigma_m() < 1.0

    def test_velocity_estimated(self):
        kf = KalmanTracker()
        for k in range(15):
            kf.step(1.0, Point(1.0 * k, 0.0))
        vx, vy = kf.velocity()
        assert vx == pytest.approx(1.0, abs=0.2)
        assert vy == pytest.approx(0.0, abs=0.2)

    def test_tracks_moving_target_better_than_raw(self):
        kf = KalmanTracker()
        rng = np.random.default_rng(1)
        raw_err, filt_err = [], []
        for k in range(40):
            truth = Point(0.5 * k, 0.25 * k)
            fix = Point(truth.x + rng.normal(0, 1.5), truth.y + rng.normal(0, 1.5))
            est = kf.step(1.0, fix)
            if k >= 5:
                raw_err.append(fix.distance_to(truth))
                filt_err.append(est.distance_to(truth))
        assert np.mean(filt_err) < np.mean(raw_err)

    def test_uncertainty_grows_on_predict(self):
        kf = KalmanTracker()
        kf.step(0.0, Point(0, 0))
        kf.update(Point(0, 0))
        sigma_before = kf.position_sigma_m()
        kf.predict(5.0)
        assert kf.position_sigma_m() > sigma_before

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            KalmanTracker().predict(-1.0)

    def test_covariance_stays_symmetric(self):
        kf = KalmanTracker()
        rng = np.random.default_rng(2)
        for _ in range(50):
            kf.step(0.5, Point(*rng.uniform(0, 10, 2)))
        np.testing.assert_allclose(kf.covariance, kf.covariance.T)


class TestCovarianceAccessors:
    def test_position_covariance_converges_on_stationary_target(self):
        # Repeated fixes on a stationary target must shrink the posterior
        # position covariance monotonically toward its steady state.
        kf = KalmanTracker(KalmanConfig(acceleration_noise=0.05))
        traces = []
        for _ in range(30):
            kf.step(1.0, Point(5, 5))
            traces.append(float(np.trace(kf.position_covariance())))
        assert traces[-1] < traces[0] / 10
        assert all(b <= a + 1e-9 for a, b in zip(traces, traces[1:]))

    def test_position_covariance_matches_sigma(self):
        kf = KalmanTracker()
        kf.step(0.0, Point(1, 2))
        kf.step(1.0, Point(2, 2))
        cov = kf.position_covariance()
        assert cov.shape == (2, 2)
        sigma = np.sqrt((cov[0, 0] + cov[1, 1]) / 2)
        assert kf.position_sigma_m() == pytest.approx(sigma)

    def test_position_covariance_is_a_copy(self):
        kf = KalmanTracker()
        kf.step(0.0, Point(0, 0))
        cov = kf.position_covariance()
        cov[0, 0] = 1e9
        assert kf.position_covariance()[0, 0] != 1e9


class TestMeasurementSigmaOverride:
    def test_inflated_sigma_deweights_fix(self):
        # Same prior, same outlier fix: the high-sigma update must move
        # the estimate less than the configured-sigma update.
        trusting, wary = KalmanTracker(), KalmanTracker()
        for kf in (trusting, wary):
            for _ in range(5):
                kf.step(1.0, Point(0, 0))
        outlier = Point(8, 0)
        moved_trusting = trusting.step(1.0, outlier).distance_to(Point(0, 0))
        moved_wary = wary.step(
            1.0, outlier, measurement_sigma_m=30.0
        ).distance_to(Point(0, 0))
        assert moved_wary < moved_trusting / 2

    def test_none_override_matches_config(self):
        default, explicit = KalmanTracker(), KalmanTracker()
        sigma = KalmanConfig().measurement_sigma_m
        for k in range(8):
            a = default.step(1.0, Point(k, 0.5 * k))
            b = explicit.step(1.0, Point(k, 0.5 * k), measurement_sigma_m=sigma)
            assert a == b

    def test_invalid_override_rejected(self):
        kf = KalmanTracker()
        kf.step(0.0, Point(0, 0))
        with pytest.raises(ValueError):
            kf.update(Point(1, 1), measurement_sigma_m=0.0)
        with pytest.raises(ValueError):
            kf.step(1.0, Point(1, 1), measurement_sigma_m=-2.0)


class TestFilterComparison:
    def test_kalman_as_tracker_backend(self):
        scen = get_scenario("lab")
        system = NomLocSystem(scen, SystemConfig(packets_per_link=8))
        tracker = NomLocTracker(
            system, make_filter=lambda rng: KalmanTracker()
        )
        traj = waypoint_trajectory(
            [Point(1.5, 1.5), Point(9.0, 1.5), Point(9.0, 7.0)],
            speed_mps=1.5,
        )
        res = tracker.track(traj, np.random.default_rng(3))
        assert len(res.filtered) == len(traj)
        assert res.filtered_rmse < res.raw_rmse * 1.5

    def test_both_filters_comparable_on_same_fixes(self):
        """Feed identical fix streams to PF and KF: both should filter."""
        from repro.environment import FloorPlan
        from repro.geometry import Polygon
        from repro.tracking import ParticleFilterTracker

        plan = FloorPlan("room", Polygon.rectangle(0, 0, 30, 30))
        rng = np.random.default_rng(4)
        pf = ParticleFilterTracker(plan, rng=np.random.default_rng(0))
        kf = KalmanTracker()
        pf_err, kf_err, raw_err = [], [], []
        for k in range(40):
            truth = Point(2.0 + 0.6 * k, 15.0)
            fix = Point(truth.x + rng.normal(0, 1.5), truth.y + rng.normal(0, 1.5))
            pf_est = pf.step(1.0, fix)
            kf_est = kf.step(1.0, fix)
            if k >= 8:
                raw_err.append(fix.distance_to(truth))
                pf_err.append(pf_est.distance_to(truth))
                kf_err.append(kf_est.distance_to(truth))
        assert np.mean(pf_err) < np.mean(raw_err)
        assert np.mean(kf_err) < np.mean(raw_err)
