"""Tests for the particle filter and the end-to-end tracker."""

import numpy as np
import pytest

from repro.core import NomLocSystem, SystemConfig
from repro.environment import FloorPlan, get_scenario
from repro.geometry import Point, Polygon
from repro.tracking import (
    NomLocTracker,
    ParticleFilterConfig,
    ParticleFilterTracker,
    TrackingResult,
    Trajectory,
    waypoint_trajectory,
)


@pytest.fixture
def room():
    return FloorPlan("room", Polygon.rectangle(0, 0, 20, 20))


class TestParticleFilterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParticleFilterConfig(num_particles=1)
        with pytest.raises(ValueError):
            ParticleFilterConfig(measurement_sigma_m=0)
        with pytest.raises(ValueError):
            ParticleFilterConfig(resample_fraction=0)
        with pytest.raises(ValueError):
            ParticleFilterConfig(outside_penalty=0)


class TestParticleFilter:
    def test_converges_to_static_target(self, room):
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(0))
        truth = Point(7.0, 13.0)
        rng = np.random.default_rng(1)
        for _ in range(12):
            fix = Point(
                truth.x + rng.normal(0, 1.0), truth.y + rng.normal(0, 1.0)
            )
            pf.step(1.0, fix)
        assert pf.estimate().distance_to(truth) < 1.0
        assert pf.spread_m() < 3.0

    def test_tracks_moving_target(self, room):
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(0))
        rng = np.random.default_rng(2)
        errors = []
        for k in range(20):
            truth = Point(2.0 + 0.8 * k, 10.0)
            fix = Point(
                truth.x + rng.normal(0, 1.2), truth.y + rng.normal(0, 1.2)
            )
            est = pf.step(1.0, fix)
            if k >= 5:
                errors.append(est.distance_to(truth))
        assert np.mean(errors) < 1.5

    def test_filtering_beats_raw_fixes(self, room):
        """The whole point: posterior mean < raw measurement error."""
        rng = np.random.default_rng(3)
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(0))
        raw_err, filt_err = [], []
        for k in range(30):
            truth = Point(3.0 + 0.5 * k, 5.0 + 0.3 * k)
            fix = Point(
                truth.x + rng.normal(0, 1.5), truth.y + rng.normal(0, 1.5)
            )
            est = pf.step(1.0, fix)
            if k >= 5:
                raw_err.append(fix.distance_to(truth))
                filt_err.append(est.distance_to(truth))
        assert np.mean(filt_err) < np.mean(raw_err)

    def test_estimate_stays_inside_venue(self, room):
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(0))
        # Feed fixes at the corner; the estimate must remain legal.
        for _ in range(10):
            pf.step(1.0, Point(0.5, 0.5))
        est = pf.estimate()
        assert room.contains(est) or est.distance_to(Point(0.5, 0.5)) < 2.0

    def test_negative_dt_rejected(self, room):
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            pf.predict(-1.0)

    def test_zero_dt_noop(self, room):
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(0))
        before = pf.states.copy()
        pf.predict(0.0)
        np.testing.assert_array_equal(pf.states, before)

    def test_ess_drops_then_resamples(self, room):
        pf = ParticleFilterTracker(
            room,
            ParticleFilterConfig(num_particles=200),
            rng=np.random.default_rng(0),
        )
        pf.update(Point(10, 10))
        # After a concentrated update followed by resampling, weights are
        # either renormalized or uniform; ESS is meaningful either way.
        assert 1.0 <= pf.effective_sample_size() <= 200.0

    def test_reseed_on_divergence(self, room):
        pf = ParticleFilterTracker(
            room,
            ParticleFilterConfig(num_particles=50, measurement_sigma_m=0.01),
            rng=np.random.default_rng(0),
        )
        # A fix impossibly far from every particle zeroes the weights.
        pf.update(Point(19.9, 19.9))
        est = pf.estimate()
        assert est.distance_to(Point(19.9, 19.9)) < 4.0

    def test_position_covariance_accessor(self, room):
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(0))
        for k in range(10):
            pf.step(1.0, Point(10, 10))
        cov = pf.position_covariance()
        assert cov.shape == (2, 2)
        np.testing.assert_allclose(cov, cov.T)
        assert cov[0, 0] >= 0 and cov[1, 1] >= 0
        sigma = np.sqrt((cov[0, 0] + cov[1, 1]) / 2)
        assert pf.position_sigma_m() == pytest.approx(sigma)

    def test_sigma_shrinks_as_cloud_concentrates(self, room):
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(1))
        pf.step(0.0, Point(10, 10))
        spread_before = pf.position_sigma_m()
        for _ in range(10):
            pf.step(1.0, Point(10, 10))
        assert pf.position_sigma_m() < spread_before

    def test_inflated_sigma_deweights_fix(self, room):
        # Identical clouds, identical outlier fix: the inflated-sigma arm
        # must end up farther from the outlier (it trusted it less).
        trusting = ParticleFilterTracker(room, rng=np.random.default_rng(2))
        wary = ParticleFilterTracker(room, rng=np.random.default_rng(2))
        for pf in (trusting, wary):
            for _ in range(5):
                pf.step(1.0, Point(5, 5))
        outlier = Point(15, 5)
        trusted = trusting.step(1.0, outlier)
        doubted = wary.step(1.0, outlier, measurement_sigma_m=25.0)
        assert doubted.distance_to(outlier) > trusted.distance_to(outlier)

    def test_invalid_sigma_override_rejected(self, room):
        pf = ParticleFilterTracker(room, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            pf.step(1.0, Point(5, 5), measurement_sigma_m=0.0)


class TestTrackingResult:
    def test_alignment_validation(self):
        t = Trajectory((0.0, 1.0), (Point(0, 0), Point(1, 0)))
        with pytest.raises(ValueError):
            TrackingResult(t, (Point(0, 0),), (Point(0, 0), Point(1, 0)))

    def test_metrics(self):
        t = Trajectory((0.0, 1.0), (Point(0, 0), Point(1, 0)))
        res = TrackingResult(
            t,
            raw_fixes=(Point(0, 1), Point(1, 1)),
            filtered=(Point(0, 0.5), Point(1, 0.5)),
        )
        assert res.raw_rmse == pytest.approx(1.0)
        assert res.filtered_rmse == pytest.approx(0.5)
        assert res.improvement() == pytest.approx(0.5)


class TestNomLocTracker:
    def test_end_to_end(self):
        scen = get_scenario("lab")
        system = NomLocSystem(
            scen, SystemConfig(packets_per_link=8, trace_steps=8)
        )
        tracker = NomLocTracker(system)
        traj = waypoint_trajectory(
            [Point(1.5, 1.5), Point(9.0, 1.5), Point(9.0, 7.0)],
            speed_mps=1.5,
            sample_interval_s=1.0,
        )
        res = tracker.track(traj, np.random.default_rng(4))
        assert len(res.raw_fixes) == len(traj)
        assert res.raw_rmse < 5.0
        # Filtering should not catastrophically hurt.
        assert res.filtered_rmse < res.raw_rmse * 1.5

    def test_warmup_validation(self):
        scen = get_scenario("lab")
        system = NomLocSystem(scen, SystemConfig(packets_per_link=5))
        with pytest.raises(ValueError):
            NomLocTracker(system, warmup_updates=-1)
