"""Tests for trajectory generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment import FloorPlan, Obstacle, get_scenario
from repro.channel import METAL
from repro.geometry import Point, Polygon
from repro.tracking import Trajectory, random_trajectory, waypoint_trajectory


class TestTrajectory:
    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory((0.0, 1.0), (Point(0, 0),))
        with pytest.raises(ValueError):
            Trajectory((), ())
        with pytest.raises(ValueError):
            Trajectory((0.0, 0.0), (Point(0, 0), Point(1, 1)))
        with pytest.raises(ValueError):
            Trajectory((1.0, 0.5), (Point(0, 0), Point(1, 1)))

    def test_measures(self):
        t = Trajectory(
            (0.0, 1.0, 2.0), (Point(0, 0), Point(3, 0), Point(3, 4))
        )
        assert t.duration_s == 2.0
        assert t.length_m() == pytest.approx(7.0)
        assert t.average_speed() == pytest.approx(3.5)
        assert len(t) == 3

    def test_single_sample(self):
        t = Trajectory((0.0,), (Point(1, 1),))
        assert t.average_speed() == 0.0
        assert t.length_m() == 0.0

    def test_iteration(self):
        t = Trajectory((0.0, 1.0), (Point(0, 0), Point(1, 0)))
        pairs = list(t)
        assert pairs[0] == (0.0, Point(0, 0))


class TestWaypointTrajectory:
    def test_constant_speed(self):
        t = waypoint_trajectory(
            [Point(0, 0), Point(10, 0)], speed_mps=2.0, sample_interval_s=1.0
        )
        assert t.duration_s == pytest.approx(5.0)
        # Each 1 s step covers 2 m.
        for a, b in zip(t.positions, t.positions[1:]):
            assert a.distance_to(b) == pytest.approx(2.0, abs=1e-9)

    def test_corners_traversed(self):
        t = waypoint_trajectory(
            [Point(0, 0), Point(4, 0), Point(4, 4)],
            speed_mps=1.0,
            sample_interval_s=0.5,
        )
        assert t.positions[0] == Point(0, 0)
        assert t.positions[-1].almost_equals(Point(4, 4))
        assert t.length_m() == pytest.approx(8.0, abs=1e-6)

    def test_endpoint_always_included(self):
        t = waypoint_trajectory(
            [Point(0, 0), Point(1, 0)], speed_mps=0.3, sample_interval_s=1.0
        )
        assert t.positions[-1].almost_equals(Point(1, 0))

    def test_validation(self):
        with pytest.raises(ValueError):
            waypoint_trajectory([Point(0, 0)])
        with pytest.raises(ValueError):
            waypoint_trajectory([Point(0, 0), Point(1, 0)], speed_mps=0)
        with pytest.raises(ValueError):
            waypoint_trajectory([Point(0, 0), Point(0, 0)])

    @given(
        st.floats(min_value=0.5, max_value=3.0),
        st.floats(min_value=0.2, max_value=2.0),
    )
    @settings(max_examples=30)
    def test_speed_property(self, speed, interval):
        t = waypoint_trajectory(
            [Point(0, 0), Point(7, 0), Point(7, 5)],
            speed_mps=speed,
            sample_interval_s=interval,
        )
        # Duration is exact; the resampled polyline may cut the corner, so
        # its measured speed is bounded above by the commanded speed.
        assert t.duration_s == pytest.approx(12.0 / speed, rel=1e-9)
        assert t.average_speed() <= speed + 1e-9
        # Fine sampling recovers the commanded speed.
        fine = waypoint_trajectory(
            [Point(0, 0), Point(7, 0), Point(7, 5)],
            speed_mps=speed,
            sample_interval_s=0.05,
        )
        assert fine.average_speed() == pytest.approx(speed, rel=0.02)


class TestRandomTrajectory:
    def test_stays_inside_and_clear(self):
        scen = get_scenario("lab")
        rng = np.random.default_rng(0)
        t = random_trajectory(scen.plan, rng, num_waypoints=5)
        for p in t.positions:
            assert scen.plan.contains(p)
            for o in scen.plan.obstacles:
                assert not o.polygon.contains(p, boundary=False)

    def test_validation(self):
        scen = get_scenario("lab")
        with pytest.raises(ValueError):
            random_trajectory(scen.plan, np.random.default_rng(0), num_waypoints=1)

    def test_impossible_venue_raises(self):
        # A venue almost fully covered by an obstacle defeats waypointing.
        plan = FloorPlan(
            "blocked",
            Polygon.rectangle(0, 0, 10, 10),
            (),
            (Obstacle(Polygon.rectangle(0.2, 0.2, 9.8, 9.8), METAL),),
        )
        with pytest.raises(RuntimeError):
            random_trajectory(
                plan, np.random.default_rng(0), num_waypoints=4, max_attempts=20
            )

    def test_reproducible(self):
        scen = get_scenario("lab")
        t1 = random_trajectory(scen.plan, np.random.default_rng(5))
        t2 = random_trajectory(scen.plan, np.random.default_rng(5))
        assert t1.positions == t2.positions
