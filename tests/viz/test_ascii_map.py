"""Tests for the ASCII renderer."""

import pytest

from repro.environment import FloorPlan, Obstacle, get_scenario
from repro.channel import METAL
from repro.geometry import Point, Polygon, Segment
from repro.viz import AsciiCanvas, render_floorplan, render_scenario


class TestAsciiCanvas:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            AsciiCanvas(5, (0, 0, 10, 10))

    def test_degenerate_bbox_rejected(self):
        with pytest.raises(ValueError):
            AsciiCanvas(40, (0, 0, 0, 10))

    def test_corner_mapping(self):
        c = AsciiCanvas(41, (0, 0, 10, 10))
        # Bottom-left world corner -> last row, first column.
        assert c.to_cell(Point(0, 0)) == (c.height - 1, 0)
        # Top-right world corner -> first row, last column.
        assert c.to_cell(Point(10, 10)) == (0, 40)

    def test_off_canvas_returns_none(self):
        c = AsciiCanvas(41, (0, 0, 10, 10))
        assert c.to_cell(Point(-5, 5)) is None
        assert c.to_cell(Point(5, 15)) is None

    def test_put_and_render(self):
        c = AsciiCanvas(20, (0, 0, 10, 10))
        c.put(Point(5, 5), "X")
        assert "X" in c.render()

    def test_put_requires_single_char(self):
        c = AsciiCanvas(20, (0, 0, 10, 10))
        with pytest.raises(ValueError):
            c.put(Point(5, 5), "XY")

    def test_put_label(self):
        c = AsciiCanvas(30, (0, 0, 10, 10))
        c.put_label(Point(2, 5), "AP1")
        assert "AP1" in c.render()

    def test_draw_segment_continuous(self):
        c = AsciiCanvas(30, (0, 0, 10, 10))
        c.draw_segment(Segment(Point(0, 5), Point(10, 5)), "-")
        row = next(r for r in c.render().splitlines() if "-" in r)
        assert row.count("-") >= 25  # nearly the full width

    def test_fill_polygon(self):
        c = AsciiCanvas(40, (0, 0, 10, 10))
        c.fill_polygon(Polygon.rectangle(2, 2, 8, 8), "%")
        assert c.render().count("%") > 20


class TestRenderFloorplan:
    def test_structure_glyphs_present(self):
        plan = FloorPlan(
            "t",
            Polygon.rectangle(0, 0, 10, 8),
            (),
            (Obstacle(Polygon.rectangle(4, 4, 6, 6), METAL),),
        )
        out = render_floorplan(plan, width=40)
        assert "#" in out
        assert "%" in out

    def test_markers_and_region(self):
        plan = FloorPlan("t", Polygon.rectangle(0, 0, 10, 8))
        out = render_floorplan(
            plan,
            width=40,
            markers={"T": [Point(3, 3)], "E": [Point(7, 5)]},
            region=Polygon.rectangle(2, 2, 5, 5),
        )
        assert "T" in out and "E" in out and "~" in out

    def test_marker_overwrites_region(self):
        plan = FloorPlan("t", Polygon.rectangle(0, 0, 10, 8))
        out = render_floorplan(
            plan,
            width=40,
            markers={"T": [Point(3, 3)]},
            region=Polygon.rectangle(2.5, 2.5, 3.5, 3.5),
        )
        assert "T" in out


class TestRenderScenario:
    def test_lab_shows_everything(self):
        out = render_scenario(get_scenario("lab"), width=60)
        for name in ("AP1", "AP2", "AP3", "AP4"):
            assert name in out
        assert "n" in out  # nomadic sites
        assert "." in out  # test sites
        assert "%" in out  # clutter

    def test_lobby_l_shape(self):
        out = render_scenario(get_scenario("lobby"), width=76)
        lines = out.splitlines()
        # The notch: early lines are much shorter than late ones.
        assert len(lines[1]) < len(lines[-2])

    def test_overlay(self):
        out = render_scenario(
            get_scenario("lab"),
            width=60,
            truth=Point(6.4, 4.2),
            estimate=Point(6.0, 4.3),
        )
        assert "T" in out and "E" in out
