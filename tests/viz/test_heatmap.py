"""Tests for the ASCII heatmap renderer."""

import pytest

from repro.channel import METAL
from repro.environment import FloorPlan, Obstacle, get_scenario
from repro.geometry import Polygon
from repro.viz import render_heatmap
from repro.viz.heatmap import RAMP


@pytest.fixture
def room():
    return FloorPlan("room", Polygon.rectangle(0, 0, 10, 10))


class TestRenderHeatmap:
    def test_gradient_field(self, room):
        hm = render_heatmap(room, lambda p: p.x, grid_spacing_m=1.0, width=40)
        assert hm.vmin == pytest.approx(0.5)  # first grid cell centre
        assert hm.vmax == pytest.approx(9.5)
        assert len(hm.points) == len(hm.values) == 100
        # Low glyphs on the left rows, high glyphs on the right.
        for line in hm.text.splitlines():
            if "@" in line and "." in line:
                assert line.index(".") < line.index("@")

    def test_legend(self, room):
        hm = render_heatmap(room, lambda p: p.x, width=40)
        assert "low" in hm.legend() and "high" in hm.legend()

    def test_constant_field(self, room):
        hm = render_heatmap(room, lambda p: 2.0, width=40)
        body = [
            ch
            for line in hm.text.splitlines()
            for ch in line
            if ch not in "# "
        ]
        assert body  # cells rendered
        assert set(body) <= set(RAMP.replace(" ", "") + ".")

    def test_fixed_scale(self, room):
        hm = render_heatmap(room, lambda p: p.x, vmin=0.0, vmax=100.0, width=40)
        # Everything is small on this scale: only low-ramp glyphs appear.
        body = {
            ch
            for line in hm.text.splitlines()
            for ch in line
            if ch not in "# "
        }
        assert body <= {".", ":"}

    def test_obstacles_skipped(self):
        plan = FloorPlan(
            "r",
            Polygon.rectangle(0, 0, 10, 10),
            (),
            (Obstacle(Polygon.rectangle(3, 3, 7, 7), METAL),),
        )
        hm = render_heatmap(plan, lambda p: 1.0, grid_spacing_m=1.0, width=40)
        assert all(
            not (3 < p.x < 7 and 3 < p.y < 7) for p in hm.points
        )

    def test_validation(self, room):
        with pytest.raises(ValueError):
            render_heatmap(room, lambda p: 1.0, grid_spacing_m=0)
        tiny = FloorPlan("t", Polygon.rectangle(0, 0, 0.5, 0.5))
        with pytest.raises(ValueError):
            render_heatmap(tiny, lambda p: 1.0, grid_spacing_m=5.0)

    def test_l_shape_respected(self):
        lobby = get_scenario("lobby")
        hm = render_heatmap(lobby.plan, lambda p: 1.0, grid_spacing_m=2.0, width=60)
        for p in hm.points:
            assert lobby.plan.contains(p)
